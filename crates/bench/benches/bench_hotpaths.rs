//! Hot-path microbenchmarks for the columnar instance core and the
//! incremental planning loops: `RegionTimes` select/profit sweeps, the
//! staged `RowState::admits` check, and cold vs warm-started LP oracle
//! solves — all on a 1H-sized MCC workload (12 000 candidates, 10 CPs),
//! the scale where these paths dominate every registry strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use eblow_core::oned::{
    successive_rounding, CombinatorialOracle, LpHint, LpOracle, MkpItem, RoundingConfig, RowBase,
};
use eblow_core::profit::RegionTimes;
use eblow_core::StopFlag;
use eblow_gen::{benchmark, Family};
use eblow_model::CharId;
use std::hint::black_box;

fn bench_hotpaths(c: &mut Criterion) {
    let inst = benchmark(Family::H1(1));
    let n = inst.num_chars();
    let mut group = c.benchmark_group("hotpaths_1h");
    group.sample_size(3);

    // Select/deselect churn: every 3rd candidate on, then off again —
    // 8 000 sparse updates of the incrementally-tracked max.
    group.bench_function("region_times_select_deselect_sweep", |b| {
        b.iter(|| {
            let mut rt = RegionTimes::new(&inst);
            for i in (0..n).step_by(3) {
                rt.select(&inst, i);
            }
            for i in (0..n).step_by(3) {
                rt.deselect(&inst, i);
            }
            black_box(rt.total())
        })
    });

    // Full dynamic-profit sweep (Eqn. 6) under a partial selection, via
    // the buffer-reusing all-candidate entry point (the 2D pipeline's
    // pricing pass; the 1D rounding loop prices its shrinking unsolved
    // set per item instead).
    group.bench_function("region_times_profits_sweep", |b| {
        let mut rt = RegionTimes::new(&inst);
        for i in (0..n).step_by(5) {
            rt.select(&inst, i);
        }
        let mut buf = Vec::new();
        b.iter(|| {
            rt.profits_into(&inst, &mut buf);
            black_box(buf.len())
        })
    });

    // Admission probing: fill one row with a greedy stream of candidates,
    // probing admits for each — the pattern of the rounding commit loop.
    group.bench_function("row_state_admits_stream", |b| {
        let w = inst.stencil().width();
        b.iter(|| {
            let mut row = eblow_core::oned::RowState::default();
            let mut admitted = 0usize;
            for i in 0..2_000.min(n) {
                let id = CharId::from(i);
                if row.admits(&inst, id, w) {
                    row.commit(&inst, id);
                    admitted += 1;
                }
            }
            black_box(admitted)
        })
    });

    // Cold vs warm-started LP: the same shrinking item sequence solved
    // with a fresh hint every time (cold) and with one carried hint
    // (warm). Solutions are identical by contract; only the cost differs.
    let items_full = MkpItem::initial_set(&inst);
    let bases = vec![RowBase::default(); inst.num_rows().expect("1H is 1D")];
    let w = inst.stencil().width();
    group.bench_function("oracle_solve_lp_cold", |b| {
        b.iter(|| {
            let mut items = items_full.clone();
            for _ in 0..6 {
                let sol = CombinatorialOracle.solve_lp(&items, &bases, w).unwrap();
                black_box(sol.objective);
                let keep = items.len() * 9 / 10;
                items.truncate(keep);
            }
        })
    });
    group.bench_function("oracle_solve_lp_warm", |b| {
        b.iter(|| {
            let mut items = items_full.clone();
            let mut hint = LpHint::default();
            for _ in 0..6 {
                let sol = CombinatorialOracle
                    .solve_lp_warm(&items, &bases, w, &mut hint)
                    .unwrap();
                black_box(sol.objective);
                let keep = items.len() * 9 / 10;
                items.truncate(keep);
            }
        })
    });

    // End to end: one full successive-rounding run (Algorithm 1) over the
    // eligible set — the composite consumer of all three paths above.
    group.bench_function("successive_rounding_full", |b| {
        let eligible: Vec<usize> = (0..n).collect();
        let rows = inst.num_rows().expect("1H is 1D");
        b.iter(|| {
            let out = successive_rounding(
                &inst,
                &eligible,
                rows,
                &RoundingConfig::default(),
                &CombinatorialOracle,
                StopFlag::NEVER,
            );
            black_box(out.unsolved.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hotpaths);
criterion_main!(benches);
