//! The reduction **BSS ≤p 1DOSP** (paper Lemma 2).
//!
//! Given BSS numbers `x_1..x_n` (all `> M/2` where `M = max x`) and target
//! `s`, build a single-row 1DOSP instance:
//!
//! * stencil row of length `M + s`;
//! * one character per `x_i`: width `M`, symmetric blanks `M − x_i`
//!   (legal because `x_i > M/2`), VSB shots `x_i + 1`;
//! * an anchor character `c_0`: width `M`, blanks `M − min_i x_i`, VSB
//!   shots `Σ x_i + 1` (so valuable it is always selected);
//! * one region, every character repeating once.
//!
//! Under Lemma 1 a selection `S′ ∪ {c_0}` packs into length
//! `M + Σ_{i∈S′} x_i`, so it fits the row iff `Σ_{i∈S′} x_i ≤ s` — and the
//! optimal stencil reaches writing time `T_VSB − Σx − s` iff some subset
//! sums to exactly `s`. (Our model charges 1 shot per CP use instead of
//! the paper's 0, so shot counts are `x_i + 1`; the argument is identical
//! with every time shifted by the constant `n + 1`.)

use crate::BssInstance;
use eblow_model::{Character, Instance, Selection, Stencil};

/// A 1DOSP instance constructed from a BSS instance, with the reduction's
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct OspRowInstance {
    /// The OSP instance: character 0 is the anchor `c_0`; character `i+1`
    /// corresponds to BSS number `x_i`.
    pub instance: Instance,
    /// `M = max_i x_i`.
    pub m: u64,
    /// The BSS target `s`.
    pub s: u64,
    /// The original numbers.
    pub xs: Vec<u64>,
}

impl OspRowInstance {
    /// The writing time an optimal stencil achieves iff the BSS instance is
    /// satisfiable: `T_VSB − Σx − s` (shifted model, see module docs).
    pub fn yes_writing_time(&self) -> u64 {
        let sum_x: u64 = self.xs.iter().sum();
        let t_vsb: u64 = self.instance.vsb_times()[0];
        t_vsb - sum_x - self.s
    }
}

/// Builds the Lemma 2 construction for a `u64`-valued BSS instance.
///
/// # Panics
///
/// Panics if the BSS instance is empty or violates `2·x_i > max x` (which
/// [`BssInstance`] already guarantees for instances built through its
/// constructor).
pub fn bss_to_osp(numbers: &[u64], s: u64) -> OspRowInstance {
    assert!(!numbers.is_empty(), "empty BSS instance");
    // Re-validate boundedness through the BSS type.
    BssInstance::from_u64(numbers, s).expect("BSS boundedness violated");
    let m = *numbers.iter().max().unwrap();
    let x_min = *numbers.iter().min().unwrap();
    let sum_x: u64 = numbers.iter().sum();
    let height = 40u64;

    let mut chars = Vec::with_capacity(numbers.len() + 1);
    // c_0: blanks M − min x, shots Σx + 1.
    chars.push(
        Character::new(m, height, [m - x_min, m - x_min, 0, 0], sum_x + 1)
            .expect("anchor blanks fit: 2(M − min x) ≤ M by boundedness"),
    );
    for &x in numbers {
        chars.push(
            Character::new(m, height, [m - x, m - x, 0, 0], x + 1)
                .expect("blanks fit: 2(M − x) ≤ M by boundedness"),
        );
    }
    let repeats = vec![vec![1u64]; chars.len()];
    let instance = Instance::new(
        Stencil::with_rows(m + s, height, height).expect("positive row"),
        chars,
        repeats,
    )
    .expect("construction is well-formed");
    OspRowInstance {
        instance,
        m,
        s,
        xs: numbers.to_vec(),
    }
}

/// Exact single-row 1DOSP solver by subset enumeration + Lemma 1 packing
/// (`O(2^n · n)`; test oracle for n ≲ 18). Returns the minimum system
/// writing time.
pub fn brute_force_min_row(instance: &Instance) -> u64 {
    let n = instance.num_chars();
    assert!(n <= 18, "brute force limited to small instances");
    let w = instance.stencil().width();
    let mut best = instance.total_writing_time(&Selection::none(n));
    for mask in 1u64..(1 << n) {
        let ids: Vec<usize> = (0..n).filter(|i| (mask >> i) & 1 == 1).collect();
        let len = eblow_model::overlap::symmetric_min_length(ids.iter().map(|&i| {
            let c = instance.char(i);
            (c.width(), c.symmetric_blank())
        }));
        if len <= w {
            let t = instance.total_writing_time(&Selection::from_indices(n, ids));
            best = best.min(t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_bss;

    #[test]
    fn paper_example_packs_to_m_plus_s() {
        // S = {1100, 1200, 2000}, s = 2300 (paper Fig. 3).
        let osp = bss_to_osp(&[1100, 1200, 2000], 2300);
        assert_eq!(osp.m, 2000);
        assert_eq!(osp.instance.stencil().width(), 4300);
        // c_0 blanks: M − min = 900; c_1 blanks: 900; c_2: 800; c_3: 0.
        assert_eq!(osp.instance.char(0).blanks().left, 900);
        assert_eq!(osp.instance.char(1).blanks().left, 900);
        assert_eq!(osp.instance.char(2).blanks().left, 800);
        assert_eq!(osp.instance.char(3).blanks().left, 0);
        // {c0, c1, c2} packs to exactly M + s = 4300 (paper Fig. 3b).
        let len = eblow_model::overlap::symmetric_min_length([0usize, 1, 2].iter().map(|&i| {
            let c = osp.instance.char(i);
            (c.width(), c.symmetric_blank())
        }));
        assert_eq!(len, 4300);
    }

    #[test]
    fn reduction_equivalence_on_sat_and_unsat_cases() {
        let cases: Vec<(Vec<u64>, u64)> = vec![
            (vec![1100, 1200, 2000], 2300), // SAT: 1100 + 1200
            (vec![1100, 1200, 2000], 2250), // UNSAT
            (vec![60, 70, 80, 90], 150),    // SAT: 60 + 90 or 70 + 80
            (vec![60, 70, 80, 90], 145),    // UNSAT
            (vec![51, 52, 53], 0),          // SAT: empty subset
        ];
        for (xs, s) in cases {
            let bss = BssInstance::from_u64(&xs, s).unwrap();
            let bss_sat = brute_force_bss(&bss).is_some();
            let osp = bss_to_osp(&xs, s);
            let best = brute_force_min_row(&osp.instance);
            let yes = osp.yes_writing_time();
            assert_eq!(
                bss_sat,
                best == yes,
                "xs={xs:?} s={s}: best={best}, yes-threshold={yes}"
            );
            // Writing time can never beat the theoretical optimum.
            assert!(best >= yes);
        }
    }

    #[test]
    fn anchor_is_always_worth_selecting() {
        let osp = bss_to_osp(&[60, 70, 80], 75);
        let n = osp.instance.num_chars();
        // Best solution must include c_0: compare against the best
        // anchor-less selection.
        let w = osp.instance.stencil().width();
        let mut best_without = osp.instance.total_writing_time(&Selection::none(n));
        for mask in 1u64..(1 << (n - 1)) {
            let ids: Vec<usize> = (0..n - 1)
                .filter(|i| (mask >> i) & 1 == 1)
                .map(|i| i + 1)
                .collect();
            let len = eblow_model::overlap::symmetric_min_length(ids.iter().map(|&i| {
                let c = osp.instance.char(i);
                (c.width(), c.symmetric_blank())
            }));
            if len <= w {
                best_without = best_without.min(
                    osp.instance
                        .total_writing_time(&Selection::from_indices(n, ids)),
                );
            }
        }
        let best = brute_force_min_row(&osp.instance);
        assert!(best < best_without, "anchor saves Σx shots, dominating");
    }
}
