//! The Bounded Subset Sum (BSS) problem (paper Problem 2).

use crate::Digits;

/// A BSS instance: numbers `x_1..x_n` with `2·x_i > max_i x_i`, and a
/// target `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BssInstance {
    /// The number list.
    pub numbers: Vec<Digits>,
    /// The target sum.
    pub target: Digits,
}

impl BssInstance {
    /// Creates an instance, checking the boundedness constraint
    /// `2·x_i > max_j x_j` for every `i`.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violating number.
    pub fn new(numbers: Vec<Digits>, target: Digits) -> Result<Self, usize> {
        if let Some(max) = numbers.iter().max().cloned() {
            for (i, x) in numbers.iter().enumerate() {
                if x.double() <= max {
                    return Err(i);
                }
            }
        }
        Ok(BssInstance { numbers, target })
    }

    /// Creates an instance from `u64` values.
    ///
    /// # Errors
    ///
    /// Same as [`BssInstance::new`].
    pub fn from_u64(numbers: &[u64], target: u64) -> Result<Self, usize> {
        BssInstance::new(
            numbers.iter().map(|&v| Digits::from_u64(v)).collect(),
            Digits::from_u64(target),
        )
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.numbers.len()
    }

    /// `true` when the instance has no numbers.
    pub fn is_empty(&self) -> bool {
        self.numbers.is_empty()
    }
}

/// Decides a BSS instance by exhaustive subset enumeration (`O(2^n)`;
/// test oracle for n ≲ 20). Returns a witness subset when satisfiable.
pub fn brute_force_bss(instance: &BssInstance) -> Option<Vec<usize>> {
    let n = instance.len();
    assert!(n <= 24, "brute force limited to small instances");
    for mask in 0u64..(1 << n) {
        let mut sum = Digits::zero();
        for (i, x) in instance.numbers.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                sum = sum.add(x);
            }
        }
        if sum == instance.target {
            return Some((0..n).filter(|i| (mask >> i) & 1 == 1).collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // "given three numbers 1100, 1200, 1413 and T = 2300, we can find a
        // subset {1100, 1200}".
        let inst = BssInstance::from_u64(&[1100, 1200, 1413], 2300).unwrap();
        let witness = brute_force_bss(&inst).unwrap();
        assert_eq!(witness, vec![0, 1]);
    }

    #[test]
    fn boundedness_enforced() {
        // 500·2 = 1000 ≤ 1413 violates 2·x > max.
        assert_eq!(BssInstance::from_u64(&[500, 1413], 100), Err(0));
        assert!(BssInstance::from_u64(&[800, 1413], 100).is_ok());
    }

    #[test]
    fn unsat_instance() {
        let inst = BssInstance::from_u64(&[1100, 1200, 2000], 1500).unwrap();
        assert!(brute_force_bss(&inst).is_none());
    }

    #[test]
    fn empty_target_zero_is_sat() {
        let inst = BssInstance::from_u64(&[], 0).unwrap();
        assert_eq!(brute_force_bss(&inst), Some(vec![]));
        assert!(inst.is_empty());
    }
}
