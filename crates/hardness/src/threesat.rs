//! 3SAT and the digit-encoding reduction **3SAT ≤p BSS**
//! (paper appendix, Lemma 6 and Fig. 13).

use crate::{BssInstance, Digits};

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Variable index, `0..num_vars`.
    pub var: usize,
    /// `true` for `¬y_var`.
    pub negated: bool,
}

impl Literal {
    /// Positive literal `y_v`.
    pub fn pos(v: usize) -> Self {
        Literal {
            var: v,
            negated: false,
        }
    }

    /// Negative literal `¬y_v`.
    pub fn neg(v: usize) -> Self {
        Literal {
            var: v,
            negated: true,
        }
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] ^ self.negated
    }
}

/// A 3-literal clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clause(pub [Literal; 3]);

impl Clause {
    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.eval(assignment))
    }
}

/// A 3SAT formula satisfying the paper's two normalizations: no clause
/// contains a variable and its negation, and every variable appears in at
/// least one clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreeSat {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl ThreeSat {
    /// Creates a formula, enforcing the normalizations.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated assumption.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Result<Self, String> {
        let mut seen = vec![false; num_vars];
        for (ci, clause) in clauses.iter().enumerate() {
            for l in &clause.0 {
                if l.var >= num_vars {
                    return Err(format!("clause {ci} uses unknown variable {}", l.var));
                }
                seen[l.var] = true;
            }
            for a in 0..3 {
                for b in (a + 1)..3 {
                    if clause.0[a].var == clause.0[b].var
                        && clause.0[a].negated != clause.0[b].negated
                    {
                        return Err(format!("clause {ci} contains y and ¬y"));
                    }
                }
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(format!("variable {v} appears in no clause"));
        }
        Ok(ThreeSat { num_vars, clauses })
    }

    /// Evaluates the formula.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }
}

/// Exhaustive SAT check (`O(2^n)`; test oracle). Returns a witness.
pub fn brute_force_sat(sat: &ThreeSat) -> Option<Vec<bool>> {
    assert!(sat.num_vars <= 20, "brute force limited to small formulas");
    for mask in 0u64..(1 << sat.num_vars) {
        let assignment: Vec<bool> = (0..sat.num_vars).map(|v| (mask >> v) & 1 == 1).collect();
        if sat.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// The appendix construction: maps a 3SAT formula to a BSS instance.
///
/// Number layout (all `n + 2m + 1` digits, leading digit 1):
///
/// * `t_i` / `f_i` per variable — variable digit `i` set to 1, clause-
///   literal digits set where the clause contains `y_i` / `¬y_i`;
/// * `c_j1, c_j2, c_j3` per clause — clause-literal digit `j` set to
///   `1/2/3`, clause-selector digit `j` set to 1;
/// * target `s = (n+m)·10^{n+2m} + s0` with `s0 = 1…1 4…4 1…1`
///   (n ones, m fours, m ones).
///
/// Returns the instance; numbers are ordered `t_1, f_1, …, t_n, f_n,
/// c_11, c_12, c_13, …` so a BSS witness can be decoded with
/// [`decode_assignment`].
pub fn threesat_to_bss(sat: &ThreeSat) -> BssInstance {
    let n = sat.num_vars;
    let m = sat.clauses.len();
    let width = n + 2 * m + 1;
    let mut numbers: Vec<Digits> = Vec::with_capacity(2 * n + 3 * m);

    for v in 0..n {
        for negated in [false, true] {
            let mut digits = vec![0u8; width];
            digits[0] = 1;
            digits[1 + v] = 1;
            for (j, clause) in sat.clauses.iter().enumerate() {
                if clause.0.iter().any(|l| l.var == v && l.negated == negated) {
                    digits[1 + n + j] = 1;
                }
            }
            numbers.push(Digits::from_digits(digits));
        }
    }
    for j in 0..m {
        for k in 1..=3u8 {
            let mut digits = vec![0u8; width];
            digits[0] = 1;
            digits[1 + n + j] = k;
            digits[1 + n + m + j] = 1;
            numbers.push(Digits::from_digits(digits));
        }
    }

    // Target: leading (n+m) followed by n ones, m fours, m ones.
    let mut target_digits: Vec<u8> = (n + m).to_string().bytes().map(|b| b - b'0').collect();
    target_digits.extend(std::iter::repeat_n(1, n));
    target_digits.extend(std::iter::repeat_n(4, m));
    target_digits.extend(std::iter::repeat_n(1, m));
    let target = Digits::from_digits(target_digits);

    BssInstance::new(numbers, target).expect("construction satisfies boundedness")
}

/// Decodes a BSS witness (indices into the constructed number list) back
/// into a truth assignment: index `2v` = `t_v` (true), `2v + 1` = `f_v`.
pub fn decode_assignment(sat: &ThreeSat, witness: &[usize]) -> Vec<bool> {
    let mut assignment = vec![false; sat.num_vars];
    for &idx in witness {
        if idx < 2 * sat.num_vars && idx % 2 == 0 {
            assignment[idx / 2] = true;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_bss;

    /// The paper's running example (Eqn. 9):
    /// (y1 ∨ ¬y3 ∨ ¬y4) ∧ (¬y1 ∨ y2 ∨ ¬y4)
    fn paper_formula() -> ThreeSat {
        ThreeSat::new(
            4,
            vec![
                Clause([Literal::pos(0), Literal::neg(2), Literal::neg(3)]),
                Clause([Literal::neg(0), Literal::pos(1), Literal::neg(3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_numbers_match_fig13() {
        let bss = threesat_to_bss(&paper_formula());
        // t1 = 110001000, f1 = 110000100 (Fig. 13)
        assert_eq!(bss.numbers[0].to_string(), "110001000");
        assert_eq!(bss.numbers[1].to_string(), "110000100");
        // f3 = 100101000, f4 = 100011100
        assert_eq!(bss.numbers[5].to_string(), "100101000");
        assert_eq!(bss.numbers[7].to_string(), "100011100");
        // c12 = 100002010, c21 = 100000101
        assert_eq!(bss.numbers[9].to_string(), "100002010");
        assert_eq!(bss.numbers[11].to_string(), "100000101");
        // s = 611114411
        assert_eq!(bss.target.to_string(), "611114411");
    }

    #[test]
    fn paper_witness_sums_to_target() {
        // ⟨y1=0, y2=1, y3=0, y4=0⟩ → f1 + t2 + f3 + f4 + c12 + c21 = s.
        let bss = threesat_to_bss(&paper_formula());
        let picks = [1usize, 2, 5, 7, 9, 11];
        let mut sum = Digits::zero();
        for &i in &picks {
            sum = sum.add(&bss.numbers[i]);
        }
        assert_eq!(sum, bss.target);
    }

    #[test]
    fn reduction_preserves_satisfiability() {
        // Several small formulas, both SAT and UNSAT.
        let formulas: Vec<ThreeSat> = vec![
            paper_formula(),
            // UNSAT on one variable padded into 3-literal clauses is not
            // expressible without duplicate vars; use a 2-var UNSAT core:
            // (a∨a∨b) ∧ (a∨a∨¬b) ∧ (¬a∨¬a∨b) ∧ (¬a∨¬a∨¬b)
            ThreeSat::new(
                2,
                vec![
                    Clause([Literal::pos(0), Literal::pos(0), Literal::pos(1)]),
                    Clause([Literal::pos(0), Literal::pos(0), Literal::neg(1)]),
                    Clause([Literal::neg(0), Literal::neg(0), Literal::pos(1)]),
                    Clause([Literal::neg(0), Literal::neg(0), Literal::neg(1)]),
                ],
            )
            .unwrap(),
        ];
        for sat in formulas {
            let bss = threesat_to_bss(&sat);
            let sat_answer = brute_force_sat(&sat).is_some();
            let bss_witness = brute_force_bss(&bss);
            assert_eq!(
                sat_answer,
                bss_witness.is_some(),
                "equivalence failed for {sat:?}"
            );
            if let Some(w) = bss_witness {
                let assignment = decode_assignment(&sat, &w);
                assert!(sat.eval(&assignment), "decoded assignment must satisfy");
            }
        }
    }

    #[test]
    fn normalization_checks() {
        assert!(ThreeSat::new(
            1,
            vec![Clause([Literal::pos(0), Literal::neg(0), Literal::pos(0)])]
        )
        .is_err());
        assert!(ThreeSat::new(2, vec![Clause([Literal::pos(0); 3])]).is_err()); // var 1 unused
        assert!(ThreeSat::new(1, vec![Clause([Literal::pos(1); 3])]).is_err()); // unknown var
    }
}
