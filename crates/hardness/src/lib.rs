//! Executable NP-hardness constructions from the paper (§2.2 + appendix).
//!
//! The paper proves OSP NP-hard through two reductions:
//!
//! 1. **3SAT ≤p BSS** (Theorem 1 / Lemma 6): a digit-encoding construction
//!    mapping a 3-CNF formula to a Bounded Subset Sum instance
//!    (`2·x_i > max x` for every number).
//! 2. **BSS ≤p 1DOSP** (Lemma 2): each BSS number `x_i` becomes a character
//!    of width `M = max x` with symmetric blanks `M − x_i`, on a single row
//!    of length `M + s`; a subset sums to `s` iff the row packs to exactly
//!    `M + s` with total writing time below `Σ x_i`.
//!
//! This crate implements both constructions *as code*, together with
//! brute-force decision procedures for 3SAT, BSS and single-row 1DOSP, so
//! the equivalences can be property-tested on small instances — the
//! executable counterpart of the paper's proofs. Digit arithmetic uses a
//! tiny base-10 bignum ([`Digits`]) because the construction needs
//! `n + 2m + 1` digits, which overflows `u128` quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bignum;
mod bss;
mod osp;
mod threesat;

pub use bignum::Digits;
pub use bss::{brute_force_bss, BssInstance};
pub use osp::{brute_force_min_row, bss_to_osp, OspRowInstance};
pub use threesat::{
    brute_force_sat, decode_assignment, threesat_to_bss, Clause, Literal, ThreeSat,
};
