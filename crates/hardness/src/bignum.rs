//! Minimal base-10 digit vectors for the 3SAT → BSS construction.
//!
//! The appendix encoding builds numbers with `n + 2m + 1` decimal digits
//! and relies on the fact that no digit column ever carries (the largest
//! column sum is 9). A digit vector with explicit addition keeps the
//! construction faithful and overflow-free.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision non-negative integer stored as base-10 digits,
/// most significant first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Digits {
    /// Digits, most significant first; no leading zeros (empty = 0).
    digits: Vec<u8>,
}

impl Digits {
    /// Zero.
    pub fn zero() -> Self {
        Digits { digits: Vec::new() }
    }

    /// Builds from explicit digits (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if any digit is ≥ 10.
    pub fn from_digits(digits: Vec<u8>) -> Self {
        assert!(digits.iter().all(|&d| d < 10), "digit out of range");
        let first_nonzero = digits.iter().position(|&d| d != 0);
        Digits {
            digits: match first_nonzero {
                Some(k) => digits[k..].to_vec(),
                None => Vec::new(),
            },
        }
    }

    /// Builds from a `u64`.
    pub fn from_u64(mut v: u64) -> Self {
        let mut digits = Vec::new();
        while v > 0 {
            digits.push((v % 10) as u8);
            v /= 10;
        }
        digits.reverse();
        Digits { digits }
    }

    /// Number of digits (0 for zero).
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// `true` when the value is zero.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// Digit at position `k` counted from the most significant digit of a
    /// number padded to `width` digits.
    pub fn digit_at(&self, k: usize, width: usize) -> u8 {
        let pad = width.saturating_sub(self.digits.len());
        if k < pad {
            0
        } else {
            self.digits[k - pad]
        }
    }

    /// Sum of two numbers.
    pub fn add(&self, other: &Digits) -> Digits {
        let mut a: Vec<u8> = self.digits.iter().rev().copied().collect();
        let b: Vec<u8> = other.digits.iter().rev().copied().collect();
        if a.len() < b.len() {
            a.resize(b.len(), 0);
        }
        let mut carry = 0u8;
        for (i, da) in a.iter_mut().enumerate() {
            let s = *da + b.get(i).copied().unwrap_or(0) + carry;
            *da = s % 10;
            carry = s / 10;
        }
        if carry > 0 {
            a.push(carry);
        }
        a.reverse();
        Digits::from_digits(a)
    }

    /// Doubles the number (used by the bounded-ness check `2·x > max`).
    pub fn double(&self) -> Digits {
        self.add(self)
    }
}

impl PartialOrd for Digits {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Digits {
    fn cmp(&self, other: &Self) -> Ordering {
        self.digits
            .len()
            .cmp(&other.digits.len())
            .then_with(|| self.digits.cmp(&other.digits))
    }
}

impl fmt::Display for Digits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.digits.is_empty() {
            return f.write_str("0");
        }
        for d in &self.digits {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        for v in [0u64, 1, 9, 10, 999, 123456789] {
            assert_eq!(Digits::from_u64(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn addition_matches_u64() {
        let cases = [(0u64, 0u64), (1, 9), (99, 1), (12345, 67890), (5, 5)];
        for (a, b) in cases {
            let s = Digits::from_u64(a).add(&Digits::from_u64(b));
            assert_eq!(s.to_string(), (a + b).to_string());
        }
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Digits::from_u64(100) > Digits::from_u64(99));
        assert!(Digits::from_u64(100) < Digits::from_u64(101));
        assert_eq!(
            Digits::from_u64(42).cmp(&Digits::from_u64(42)),
            Ordering::Equal
        );
    }

    #[test]
    fn digit_at_pads_left() {
        let d = Digits::from_u64(305);
        assert_eq!(d.digit_at(0, 5), 0);
        assert_eq!(d.digit_at(2, 5), 3);
        assert_eq!(d.digit_at(3, 5), 0);
        assert_eq!(d.digit_at(4, 5), 5);
    }

    #[test]
    fn leading_zeros_normalized() {
        assert_eq!(Digits::from_digits(vec![0, 0, 7]), Digits::from_u64(7));
        assert!(Digits::from_digits(vec![0, 0]).is_empty());
        assert_eq!(Digits::zero().to_string(), "0");
    }

    #[test]
    fn double_doubles() {
        assert_eq!(Digits::from_u64(123).double(), Digits::from_u64(246));
    }
}
