//! Property-based tests of the domain model's geometric and accounting
//! invariants.

use eblow_model::{overlap, simulate, Character, Instance, InstanceFeatures, Selection, Stencil};
use proptest::prelude::*;

/// Strategy: a legal character (blanks always fit the outline).
fn character() -> impl Strategy<Value = Character> {
    (
        10u64..80,
        10u64..80,
        0u64..12,
        0u64..12,
        0u64..12,
        0u64..12,
        1u64..200,
    )
        .prop_map(|(w, h, bl, br, bb, bt, shots)| {
            let bl = bl.min(w / 2);
            let br = br.min(w - bl);
            let bb = bb.min(h / 2);
            let bt = bt.min(h - bb);
            Character::new(w, h, [bl, br, bb, bt], shots).expect("constructed to be legal")
        })
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(character(), 1..12),
        prop::collection::vec(prop::collection::vec(0u64..20, 3), 12),
    )
        .prop_map(|(chars, reps)| {
            let n = chars.len();
            let repeats: Vec<Vec<u64>> = reps.into_iter().take(n).collect();
            Instance::new(Stencil::new(10_000, 10_000).unwrap(), chars, repeats).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Overlap is symmetric in the min sense and bounded by both blanks.
    #[test]
    fn overlap_bounds(a in character(), b in character()) {
        let o = overlap::h_overlap(&a, &b);
        prop_assert!(o <= a.blanks().right);
        prop_assert!(o <= b.blanks().left);
        prop_assert_eq!(o, a.blanks().right.min(b.blanks().left));
        let v = overlap::v_overlap(&a, &b);
        prop_assert!(v <= a.blanks().top && v <= b.blanks().bottom);
    }

    /// Ordered row width is between Σw − Σ(max blank) and Σw.
    #[test]
    fn row_width_bounds(chars in prop::collection::vec(character(), 1..8)) {
        let refs: Vec<&Character> = chars.iter().collect();
        let width = overlap::row_width_ordered(&refs);
        let total: u64 = chars.iter().map(|c| c.width()).sum();
        prop_assert!(width <= total);
        let max_shared: u64 = chars
            .windows(2)
            .map(|p| p[0].blanks().right.min(p[1].blanks().left))
            .sum();
        prop_assert_eq!(width, total - max_shared);
    }

    /// Lemma 1: for symmetric blanks, the blank-descending order achieves
    /// the closed-form minimum, and no permutation beats it.
    #[test]
    fn lemma1_is_a_lower_bound(blanks in prop::collection::vec(1u64..15, 2..6)) {
        let chars: Vec<Character> = blanks
            .iter()
            .map(|&s| Character::new(40, 40, [s, s, 0, 0], 2).unwrap())
            .collect();
        let lemma = overlap::symmetric_min_length(
            chars.iter().map(|c| (c.width(), c.blanks().left)),
        );
        // Exhaustive over permutations (≤ 5! = 120).
        let mut idx: Vec<usize> = (0..chars.len()).collect();
        let mut best = u64::MAX;
        permute(&mut idx, 0, &mut |perm| {
            let refs: Vec<&Character> = perm.iter().map(|&i| &chars[i]).collect();
            best = best.min(overlap::row_width_ordered(&refs));
        });
        prop_assert_eq!(lemma, best);
    }

    /// Writing-time accounting: simulation == analytic formula, and
    /// selecting more characters never increases any region's time.
    #[test]
    fn accounting_consistent_and_monotone(inst in instance(), bits in prop::collection::vec(any::<bool>(), 12)) {
        let n = inst.num_chars();
        let sel = Selection::from_mask(bits[..n].to_vec());
        let report = simulate::simulate_writing(&inst, &sel);
        let analytic = inst.writing_times(&sel);
        let simulated: Vec<u64> = report.columns.iter().map(|c| c.total).collect();
        prop_assert_eq!(&simulated, &analytic);

        // Monotonicity: flipping one candidate on can only help.
        let first_off: Option<usize> = sel.iter_unselected().next();
        if let Some(off) = first_off {
            let mut more = sel.clone();
            more.insert(off);
            let t2 = inst.writing_times(&more);
            for (a, b) in analytic.iter().zip(&t2) {
                prop_assert!(b <= a);
            }
        }
    }

    /// Text format io is a lossless bijection on generated instances.
    #[test]
    fn io_roundtrip(inst in instance()) {
        let text = eblow_model::io::to_string(&inst);
        let back = eblow_model::io::from_str(&text).unwrap();
        prop_assert_eq!(inst, back);
    }

    /// `InstanceFeatures` is a candidate-*set* summary: permuting the
    /// candidate indices (with their repeat-matrix rows) must produce the
    /// identical feature vector — the selection-model counterpart of the
    /// digest-stability tests (the digest, in contrast, is order-sensitive
    /// by design).
    #[test]
    fn features_invariant_under_candidate_reordering(inst in instance(), perm_seed in any::<u64>()) {
        let n = inst.num_chars();
        // Deterministic Fisher–Yates from the seed (xorshift64*).
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = perm_seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let chars: Vec<Character> = perm.iter().map(|&i| *inst.char(i)).collect();
        let repeats: Vec<Vec<u64>> = perm.iter().map(|&i| inst.repeat_row(i).to_vec()).collect();
        let shuffled = Instance::new(inst.stencil(), chars, repeats).unwrap();
        prop_assert_eq!(InstanceFeatures::of(&inst), InstanceFeatures::of(&shuffled));
    }

    /// The slab+CSR layout agrees *bit-exactly* with a reference dense
    /// recompute of every accounting quantity: `repeats`, `reduction`,
    /// `total_reduction`, `vsb_times`, and `writing_times` under arbitrary
    /// selections — and the sparse view contains exactly the nonzero
    /// columns with `reduction = t_ic · (n_i − 1)`.
    #[test]
    fn sparse_layout_matches_dense_reference(inst in instance(), sel_seed in any::<u64>()) {
        let n = inst.num_chars();
        let p = inst.num_regions();
        // Reference dense structures rebuilt from the public row accessor.
        let dense: Vec<Vec<u64>> = (0..n).map(|i| inst.repeat_row(i).to_vec()).collect();
        for i in 0..n {
            let saving = inst.char(i).shot_saving();
            prop_assert_eq!(inst.shot_saving(i), saving);
            let mut total = 0u64;
            let mut nnz = Vec::new();
            for c in 0..p {
                prop_assert_eq!(inst.repeats(i, c), dense[i][c]);
                let red = dense[i][c] * saving;
                prop_assert_eq!(inst.reduction(i, c), red);
                total += red;
                if dense[i][c] > 0 {
                    nnz.push((c as u32, dense[i][c], red));
                }
            }
            prop_assert_eq!(inst.total_reduction(i), total);
            let sparse: Vec<(u32, u64, u64)> = inst
                .sparse_row(i)
                .iter()
                .map(|e| (e.region, e.repeats, e.reduction))
                .collect();
            prop_assert_eq!(sparse, nnz);
        }
        // Reference VSB times and writing times, dense formulas.
        let mut vsb = vec![0u64; p];
        for i in 0..n {
            for c in 0..p {
                vsb[c] += dense[i][c] * inst.char(i).vsb_shots();
            }
        }
        prop_assert_eq!(inst.vsb_times(), &vsb[..]);
        let mut state = sel_seed | 1;
        for _ in 0..8 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let sel = Selection::from_mask((0..n).map(|i| (state >> (i % 64)) & 1 == 1).collect());
            let mut expect = vsb.clone();
            for i in sel.iter_selected() {
                for c in 0..p {
                    expect[c] -= inst.reduction(i, c);
                }
            }
            prop_assert_eq!(inst.writing_times(&sel), expect);
        }
    }

    /// `Instance::from_flat` and `Instance::new` build identical instances
    /// (same equality, same digest, same features).
    #[test]
    fn from_flat_equals_nested(inst in instance()) {
        let flat: Vec<u64> = (0..inst.num_chars())
            .flat_map(|i| inst.repeat_row(i).to_vec())
            .collect();
        let rebuilt = Instance::from_flat(
            inst.stencil(),
            inst.chars().to_vec(),
            flat,
            inst.num_regions(),
        )
        .unwrap();
        prop_assert_eq!(&rebuilt, &inst);
        prop_assert_eq!(rebuilt.digest(), inst.digest());
        prop_assert_eq!(InstanceFeatures::of(&rebuilt), InstanceFeatures::of(&inst));
    }
}

fn permute<F: FnMut(&[usize])>(idx: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == idx.len() {
        f(idx);
        return;
    }
    for i in k..idx.len() {
        idx.swap(k, i);
        permute(idx, k + 1, f);
        idx.swap(k, i);
    }
}
