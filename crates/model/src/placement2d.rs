use crate::{overlap, CharId, Instance, ModelError, Selection};

/// A character placed at an absolute stencil position.
///
/// `(x, y)` is the lower-left corner of the character *outline* (blanks
/// included). Coordinates are signed so that planners may hold intermediate
/// out-of-outline states; a valid placement has all coordinates inside
/// `[0, W] × [0, H]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlacedChar {
    /// Which candidate is placed.
    pub id: CharId,
    /// Lower-left x of the outline, µm.
    pub x: i64,
    /// Lower-left y of the outline, µm.
    pub y: i64,
}

/// A 2D stencil placement (2DOSP solution).
///
/// Overlap legality follows the disjunctive constraints (7b)–(7e) of the
/// paper: two placed characters `i`, `j` are compatible iff at least one of
///
/// ```text
/// x_i + w_i − o^h_ij ≤ x_j      (i fully left of j, shared blank allowed)
/// x_j + w_j − o^h_ji ≤ x_i      (j fully left of i)
/// y_i + h_i − o^v_ij ≤ y_j      (i fully below j)
/// y_j + h_j − o^v_ji ≤ y_i      (j fully below i)
/// ```
///
/// holds, where `o^h_ij = min(right_blank_i, left_blank_j)` and
/// `o^v_ij = min(top_blank_i, bottom_blank_j)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement2d {
    placed: Vec<PlacedChar>,
}

impl Placement2d {
    /// An empty placement.
    pub fn new() -> Self {
        Placement2d::default()
    }

    /// Builds a placement from placed characters.
    pub fn from_placed(placed: Vec<PlacedChar>) -> Self {
        Placement2d { placed }
    }

    /// The placed characters, in insertion order.
    #[inline]
    pub fn placed(&self) -> &[PlacedChar] {
        &self.placed
    }

    /// Number of placed characters.
    #[inline]
    pub fn len(&self) -> usize {
        self.placed.len()
    }

    /// `true` if nothing is placed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placed.is_empty()
    }

    /// Adds a placed character.
    pub fn push(&mut self, pc: PlacedChar) {
        self.placed.push(pc);
    }

    /// The selection induced by this placement.
    pub fn selection(&self, num_chars: usize) -> Selection {
        Selection::from_indices(num_chars, self.placed.iter().map(|p| p.id.index()))
    }

    /// Whether the pair `(a, b)` satisfies the disjunctive separation
    /// constraints with blank sharing.
    pub fn pair_compatible(instance: &Instance, a: &PlacedChar, b: &PlacedChar) -> bool {
        let ca = instance.char(a.id.index());
        let cb = instance.char(b.id.index());
        let oh_ab = overlap::h_overlap(ca, cb) as i64;
        let oh_ba = overlap::h_overlap(cb, ca) as i64;
        let ov_ab = overlap::v_overlap(ca, cb) as i64;
        let ov_ba = overlap::v_overlap(cb, ca) as i64;
        a.x + ca.width() as i64 - oh_ab <= b.x
            || b.x + cb.width() as i64 - oh_ba <= a.x
            || a.y + ca.height() as i64 - ov_ab <= b.y
            || b.y + cb.height() as i64 - ov_ba <= a.y
    }

    /// Validates the placement against the instance:
    ///
    /// * ids in range, no duplicates;
    /// * every outline inside `[0, W] × [0, H]` (constraint (7f));
    /// * every pair satisfies the disjunctive separation constraints.
    ///
    /// # Errors
    ///
    /// The first violation found is reported as a [`ModelError`]. The
    /// pairwise check is `O(k²)` over placed characters.
    pub fn validate(&self, instance: &Instance) -> Result<(), ModelError> {
        let w = instance.stencil().width() as i64;
        let h = instance.stencil().height() as i64;
        let mut seen = vec![false; instance.num_chars()];
        for p in &self.placed {
            let i = p.id.index();
            if i >= instance.num_chars() {
                return Err(ModelError::UnknownChar {
                    id: i,
                    num_chars: instance.num_chars(),
                });
            }
            if seen[i] {
                return Err(ModelError::DuplicateChar { id: i });
            }
            seen[i] = true;
            let c = instance.char(i);
            if p.x < 0 || p.y < 0 || p.x + (c.width() as i64) > w || p.y + (c.height() as i64) > h {
                return Err(ModelError::OutsideOutline { id: i });
            }
        }
        for (k, a) in self.placed.iter().enumerate() {
            for b in &self.placed[k + 1..] {
                if !Self::pair_compatible(instance, a, b) {
                    return Err(ModelError::IllegalOverlap {
                        a: a.id.index(),
                        b: b.id.index(),
                    });
                }
            }
        }
        Ok(())
    }

    /// System writing time of the placement's induced selection.
    pub fn total_writing_time(&self, instance: &Instance) -> u64 {
        instance.total_writing_time(&self.selection(instance.num_chars()))
    }

    /// Bounding-box area actually used by the placement, µm².
    pub fn used_bbox(&self, instance: &Instance) -> (u64, u64) {
        let mut max_x = 0i64;
        let mut max_y = 0i64;
        for p in &self.placed {
            let c = instance.char(p.id.index());
            max_x = max_x.max(p.x + c.width() as i64);
            max_y = max_y.max(p.y + c.height() as i64);
        }
        (max_x.max(0) as u64, max_y.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Character, Stencil};

    fn inst() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
            Character::new(30, 20, [2, 2, 2, 2], 10).unwrap(),
        ];
        let repeats = vec![vec![1]; 3];
        Instance::new(Stencil::new(100, 100).unwrap(), chars, repeats).unwrap()
    }

    fn pc(id: usize, x: i64, y: i64) -> PlacedChar {
        PlacedChar {
            id: CharId(id as u32),
            x,
            y,
        }
    }

    #[test]
    fn adjacent_with_shared_blank_is_legal() {
        let inst = inst();
        // chars 0,1 both have blanks 5 → may overlap outlines by 5.
        let p = Placement2d::from_placed(vec![pc(0, 0, 0), pc(1, 35, 0)]);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn overlapping_past_shared_blank_is_illegal() {
        let inst = inst();
        let p = Placement2d::from_placed(vec![pc(0, 0, 0), pc(1, 34, 0)]);
        assert!(matches!(
            p.validate(&inst),
            Err(ModelError::IllegalOverlap { a: 0, b: 1 })
        ));
    }

    #[test]
    fn vertical_sharing_is_legal() {
        let inst = inst();
        let p = Placement2d::from_placed(vec![pc(0, 0, 0), pc(1, 0, 35)]);
        assert!(p.validate(&inst).is_ok());
    }

    #[test]
    fn outline_enforced() {
        let inst = inst();
        let p = Placement2d::from_placed(vec![pc(0, 61, 0)]);
        assert!(matches!(
            p.validate(&inst),
            Err(ModelError::OutsideOutline { id: 0 })
        ));
        let q = Placement2d::from_placed(vec![pc(0, -1, 0)]);
        assert!(matches!(
            q.validate(&inst),
            Err(ModelError::OutsideOutline { id: 0 })
        ));
    }

    #[test]
    fn duplicate_rejected_and_bbox_computed() {
        let inst = inst();
        let p = Placement2d::from_placed(vec![pc(0, 0, 0), pc(0, 50, 50)]);
        assert!(matches!(
            p.validate(&inst),
            Err(ModelError::DuplicateChar { id: 0 })
        ));
        let q = Placement2d::from_placed(vec![pc(0, 0, 0), pc(2, 60, 60)]);
        assert_eq!(q.used_bbox(&inst), (90, 80));
        assert_eq!(q.selection(3).count(), 2);
    }

    #[test]
    fn diagonal_placement_is_legal() {
        let inst = inst();
        let p = Placement2d::from_placed(vec![pc(0, 0, 0), pc(1, 36, 36)]);
        assert!(p.validate(&inst).is_ok());
    }
}
