//! Blank-sharing ("overlapping") arithmetic.
//!
//! Adjacent characters on the stencil may share their blank margins. A blank
//! is reserved *clearance* around the pattern body; when character `a` sits
//! immediately left of character `b`, the clearance between the two pattern
//! bodies must be at least `max(a.right_blank, b.left_blank)` — the two
//! clearances may coincide. Pushed together maximally, the outlines overlap
//! by
//!
//! ```text
//! o^h_ab = a.right_blank + b.left_blank − max(a.right_blank, b.left_blank)
//!        = min(a.right_blank, b.left_blank)
//! ```
//!
//! and symmetrically in the vertical direction. This module provides those
//! quantities, the minimum width of an ordered row, and the closed form of
//! paper Lemma 1 for symmetric blanks.

use crate::Character;

/// Maximal horizontal outline overlap when `left` is placed immediately to
/// the left of `right`: `min(left.right_blank, right.left_blank)`.
///
/// # Example
///
/// ```
/// use eblow_model::{Character, overlap::h_overlap};
/// # fn main() -> Result<(), eblow_model::ModelError> {
/// let a = Character::new(40, 40, [2, 7, 0, 0], 5)?;
/// let b = Character::new(40, 40, [4, 9, 0, 0], 5)?;
/// assert_eq!(h_overlap(&a, &b), 4); // min(7, 4)
/// assert_eq!(h_overlap(&b, &a), 2); // min(9, 2)
/// # Ok(())
/// # }
/// ```
#[inline]
pub fn h_overlap(left: &Character, right: &Character) -> u64 {
    left.blanks().right.min(right.blanks().left)
}

/// Maximal vertical outline overlap when `bottom` is placed immediately
/// below `top`: `min(bottom.top_blank, top.bottom_blank)`.
#[inline]
pub fn v_overlap(bottom: &Character, top: &Character) -> u64 {
    bottom.blanks().top.min(top.blanks().bottom)
}

/// Effective width `w_ij = w_i − o^h_ij` of `left` when followed by `right`
/// (the quantity used in constraints (3d)/(3e) and (7b)/(7c)).
#[inline]
pub fn paired_width(left: &Character, right: &Character) -> u64 {
    left.width() - h_overlap(left, right)
}

/// Minimum width of a row containing `chars` in the given left-to-right
/// order, with maximal blank sharing between each adjacent pair:
/// `Σ w_i − Σ o^h_{i,i+1}`.
///
/// An empty slice has width 0.
pub fn row_width_ordered(chars: &[&Character]) -> u64 {
    let total: u64 = chars.iter().map(|c| c.width()).sum();
    let shared: u64 = chars
        .windows(2)
        .map(|pair| h_overlap(pair[0], pair[1]))
        .sum();
    total - shared
}

/// Minimum packing length for characters with **symmetric** blanks
/// (paper Lemma 1, Eqn. (2)): `Σ (w_i − s_i) + max_i s_i`.
///
/// `items` yields `(width, symmetric_blank)` pairs with `2·s_i ≤ w_i` not
/// required but `s_i ≤ w_i` expected. Returns 0 for an empty iterator.
///
/// This is the capacity formula used throughout the simplified 1D
/// formulation (4): a row of capacity `W` fits a set `S` iff
/// `Σ_{i∈S}(w_i − s_i) + max_{i∈S} s_i ≤ W`.
pub fn symmetric_min_length<I: IntoIterator<Item = (u64, u64)>>(items: I) -> u64 {
    let mut sum = 0u64;
    let mut max_s = 0u64;
    let mut any = false;
    for (w, s) in items {
        any = true;
        sum += w - s.min(w);
        max_s = max_s.max(s.min(w));
    }
    if any {
        sum + max_s
    } else {
        0
    }
}

/// Optimal single-row order for characters with symmetric blanks: sorted by
/// blank descending, the row achieves the Lemma 1 lower bound. Returns the
/// permutation (indices into `chars`) realizing it.
///
/// For *asymmetric* blanks this is only a heuristic order; the refinement DP
/// in `eblow-core` improves on it.
pub fn symmetric_optimal_order(chars: &[&Character]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..chars.len()).collect();
    idx.sort_by(|&a, &b| {
        chars[b]
            .symmetric_blank()
            .cmp(&chars[a].symmetric_blank())
            .then(a.cmp(&b))
    });
    // Insert alternately left/right so every adjacent pair shares the smaller
    // blank: descending order already guarantees the bound when packed
    // left-to-right, which keeps the order deterministic.
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Character;

    fn ch(w: u64, sl: u64, sr: u64) -> Character {
        Character::new(w, 10, [sl, sr, 0, 0], 2).unwrap()
    }

    #[test]
    fn overlap_is_min_of_facing_blanks() {
        let a = ch(40, 2, 7);
        let b = ch(40, 4, 9);
        assert_eq!(h_overlap(&a, &b), 4);
        assert_eq!(h_overlap(&b, &a), 2);
        assert_eq!(paired_width(&a, &b), 36);
    }

    #[test]
    fn v_overlap_uses_vertical_blanks() {
        let a = Character::new(10, 40, [0, 0, 3, 6], 2).unwrap();
        let b = Character::new(10, 40, [0, 0, 5, 2], 2).unwrap();
        assert_eq!(v_overlap(&a, &b), 5); // min(a.top=6, b.bottom=5)
        assert_eq!(v_overlap(&b, &a), 2); // min(b.top=2, a.bottom=3)
    }

    #[test]
    fn ordered_row_width_subtracts_adjacent_overlaps() {
        let a = ch(40, 5, 5);
        let b = ch(40, 5, 5);
        let c = ch(40, 3, 3);
        assert_eq!(row_width_ordered(&[&a, &b, &c]), 120 - 5 - 3);
        assert_eq!(row_width_ordered(&[]), 0);
        assert_eq!(row_width_ordered(&[&a]), 40);
    }

    #[test]
    fn lemma1_closed_form() {
        // Paper example style: symmetric blanks s, width M.
        // length = Σ(M−s_i) + max s_i
        let items = [(2000, 900), (2000, 800), (2000, 587)];
        assert_eq!(
            symmetric_min_length(items),
            (2000 - 900) + (2000 - 800) + (2000 - 587) + 900
        );
        assert_eq!(symmetric_min_length(std::iter::empty()), 0);
        assert_eq!(symmetric_min_length([(40, 6)]), 40);
    }

    #[test]
    fn lemma1_matches_sorted_sequential_packing() {
        // For symmetric blanks sorted descending, packing left-to-right gives
        // overlaps s_2, s_3, ..., s_n, i.e. the Lemma 1 value.
        let chars = [ch(40, 9, 9), ch(44, 7, 7), ch(38, 4, 4), ch(50, 2, 2)];
        let refs: Vec<&Character> = chars.iter().collect();
        let seq = row_width_ordered(&refs);
        let lemma = symmetric_min_length(chars.iter().map(|c| (c.width(), c.blanks().left)));
        assert_eq!(seq, lemma);
    }

    #[test]
    fn symmetric_order_sorts_by_blank_desc() {
        let chars = [ch(40, 4, 4), ch(40, 9, 9), ch(40, 6, 6)];
        let refs: Vec<&Character> = chars.iter().collect();
        assert_eq!(symmetric_optimal_order(&refs), vec![1, 2, 0]);
    }
}
