use crate::ModelError;

/// The set of character candidates selected onto the stencil
/// (the `a_i` variables of the paper).
///
/// A `Selection` is a fixed-length boolean mask over the instance's
/// candidates. It is intentionally a thin wrapper: algorithms flip bits
/// in place while tracking writing times incrementally.
///
/// # Example
///
/// ```
/// use eblow_model::Selection;
///
/// let mut sel = Selection::none(4);
/// sel.insert(2);
/// assert!(sel.contains(2));
/// assert_eq!(sel.iter_selected().collect::<Vec<_>>(), vec![2]);
/// assert_eq!(sel.count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Selection {
    mask: Vec<bool>,
}

impl Selection {
    /// An empty selection over `n` candidates.
    pub fn none(n: usize) -> Self {
        Selection {
            mask: vec![false; n],
        }
    }

    /// A full selection over `n` candidates.
    pub fn all(n: usize) -> Self {
        Selection {
            mask: vec![true; n],
        }
    }

    /// Builds a selection of the given indices over `n` candidates.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, indices: I) -> Self {
        let mut s = Selection::none(n);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Builds a selection from a boolean mask.
    pub fn from_mask(mask: Vec<bool>) -> Self {
        Selection { mask }
    }

    /// Checks the mask length against an expected candidate count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SelectionLength`] on mismatch.
    pub fn check_len(&self, expected: usize) -> Result<(), ModelError> {
        if self.mask.len() != expected {
            return Err(ModelError::SelectionLength {
                got: self.mask.len(),
                expected,
            });
        }
        Ok(())
    }

    /// Number of candidates covered by the mask (selected or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// `true` if the mask covers zero candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Whether candidate `i` is selected.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// Selects candidate `i`. Returns whether the bit changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let was = self.mask[i];
        self.mask[i] = true;
        !was
    }

    /// Deselects candidate `i`. Returns whether the bit changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let was = self.mask[i];
        self.mask[i] = false;
        was
    }

    /// Number of selected candidates (the paper's "char #" column).
    pub fn count(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Iterates over selected candidate indices in increasing order.
    pub fn iter_selected(&self) -> impl Iterator<Item = usize> + '_ {
        self.mask
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
    }

    /// Iterates over unselected candidate indices in increasing order.
    pub fn iter_unselected(&self) -> impl Iterator<Item = usize> + '_ {
        self.mask
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (!b).then_some(i))
    }

    /// The raw mask.
    #[inline]
    pub fn as_mask(&self) -> &[bool] {
        &self.mask
    }
}

impl From<Vec<bool>> for Selection {
    fn from(mask: Vec<bool>) -> Self {
        Selection::from_mask(mask)
    }
}

impl FromIterator<bool> for Selection {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Selection::from_mask(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = Selection::none(5);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn iterators_partition() {
        let s = Selection::from_indices(5, [1, 4]);
        assert_eq!(s.iter_selected().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(s.iter_unselected().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn check_len_reports_mismatch() {
        let s = Selection::none(3);
        assert!(s.check_len(3).is_ok());
        assert!(matches!(
            s.check_len(4),
            Err(ModelError::SelectionLength {
                got: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn from_iter_collects() {
        let s: Selection = [true, false, true].into_iter().collect();
        assert_eq!(s.count(), 2);
        assert!(!s.is_empty());
    }
}
