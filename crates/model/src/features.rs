//! Order-invariant feature vectors of planning instances.
//!
//! An [`InstanceFeatures`] summarizes everything the engine's strategy
//! selector needs to predict which planners are worth spawning on an
//! instance: size (candidate / region / row counts), kind (row-structured
//! 1D vs free-form 2D), blank-width statistics (how much overlapping can
//! save), and profit dispersion (how much candidate choice matters).
//!
//! Where [`InstanceDigest`](crate::InstanceDigest) answers "is this the
//! *same* instance?" (exact, order-sensitive), `InstanceFeatures` answers
//! "what *kind* of instance is this?" — every field is an aggregate over
//! the candidate set (count, sum, mean, max, variance), so the features are
//! invariant under any permutation of the candidate indices. Two instances
//! that differ only in candidate order get identical features, which makes
//! the features safe to key learned per-strategy statistics on.

use crate::Instance;

/// An order-invariant summary of an [`Instance`] for strategy selection.
///
/// All statistics are aggregates over the candidate set, so permuting the
/// candidate indices (together with their repeat-matrix rows) leaves every
/// field unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// Number of character candidates.
    pub num_chars: usize,
    /// Number of wafer regions (CPs of the MCC system).
    pub num_regions: usize,
    /// Stencil row count for row-structured instances, 0 for free-form.
    pub num_rows: usize,
    /// Whether the stencil is row-structured (1DOSP) or free-form (2DOSP).
    pub is_1d: bool,
    /// `num_chars × num_rows` — the LP cell count that size-gated 1D
    /// backends (e.g. the dense simplex) key their cutoffs on. 0 for 2D.
    pub cells: u64,
    /// Mean candidate width (µm).
    pub mean_width: f64,
    /// Mean horizontal blank per side, averaged over left and right (µm).
    pub mean_h_blank: f64,
    /// Largest horizontal blank on any side of any candidate (µm).
    pub max_h_blank: u64,
    /// Aggregate shareable fraction: `Σ (left + right blank) / Σ width`
    /// over the candidate set — how much of the stencil the overlapping
    /// trick can reclaim. (A ratio of integer sums rather than a mean of
    /// per-candidate ratios, so the value is *bit-exactly* reorder
    /// invariant.)
    pub blank_fraction: f64,
    /// Mean candidate profit (total writing-time reduction `Σ_c t_ic·n_i`).
    pub profit_mean: f64,
    /// Coefficient of variation of candidate profit (std dev / mean; 0 when
    /// the mean is 0). High dispersion means selection matters — a few
    /// candidates carry most of the reduction.
    pub profit_cv: f64,
}

impl InstanceFeatures {
    /// Extracts the feature vector of `instance`. One `O(n·P)` pass.
    ///
    /// Every accumulator is an integer (exact, commutative), converted to
    /// `f64` only at the end — the reorder invariance is bit-exact, not
    /// merely up to floating-point summation order.
    pub fn of(instance: &Instance) -> Self {
        let n = instance.num_chars();
        let num_rows = instance.num_rows().unwrap_or(0);
        let denom = n.max(1) as f64;

        let mut width_sum = 0u64;
        let mut blank_sum = 0u64;
        let mut max_h_blank = 0u64;
        let mut profit_sum = 0u128;
        let mut profit_sq_sum = 0u128;
        for i in 0..n {
            let ch = instance.char(i);
            let b = ch.blanks();
            width_sum += ch.width();
            blank_sum += b.left + b.right;
            max_h_blank = max_h_blank.max(b.left).max(b.right);
            let p = instance.total_reduction(i) as u128;
            profit_sum += p;
            profit_sq_sum += p * p;
        }
        let profit_mean = profit_sum as f64 / denom;
        let profit_var = (profit_sq_sum as f64 / denom - profit_mean * profit_mean).max(0.0);
        let profit_cv = if profit_mean > 0.0 {
            profit_var.sqrt() / profit_mean
        } else {
            0.0
        };
        InstanceFeatures {
            num_chars: n,
            num_regions: instance.num_regions(),
            num_rows,
            is_1d: instance.stencil().row_height().is_some(),
            cells: (n as u64) * (num_rows as u64),
            mean_width: width_sum as f64 / denom,
            mean_h_blank: blank_sum as f64 / (2.0 * denom),
            max_h_blank,
            blank_fraction: blank_sum as f64 / width_sum.max(1) as f64,
            profit_mean,
            profit_cv,
        }
    }

    /// A compact single-line rendering of the snapshot, used by trace
    /// events that record *which features drove a decision* (e.g. the
    /// selector's shortlist event) without serializing the whole struct.
    pub fn summary(&self) -> String {
        format!(
            "chars={} regions={} rows={} kind={} cells={} mean_w={:.1} blank_frac={:.3} \
             profit_mean={:.1} profit_cv={:.3}",
            self.num_chars,
            self.num_regions,
            self.num_rows,
            if self.is_1d { "1d" } else { "2d" },
            self.cells,
            self.mean_width,
            self.blank_fraction,
            self.profit_mean,
            self.profit_cv,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Character, Instance, Stencil};

    fn instance_1d() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 7, 5, 5], 20).unwrap(),
            Character::new(50, 40, [8, 6, 5, 5], 35).unwrap(),
            Character::new(30, 40, [2, 3, 5, 5], 10).unwrap(),
        ];
        Instance::new(
            Stencil::with_rows(200, 80, 40).unwrap(),
            chars,
            vec![vec![10, 1], vec![4, 9], vec![0, 2]],
        )
        .unwrap()
    }

    #[test]
    fn features_capture_shape_and_kind() {
        let f = InstanceFeatures::of(&instance_1d());
        assert_eq!(f.num_chars, 3);
        assert_eq!(f.num_regions, 2);
        assert_eq!(f.num_rows, 2);
        assert!(f.is_1d);
        assert_eq!(f.cells, 6);
        assert!((f.mean_width - 40.0).abs() < 1e-12);
        assert_eq!(f.max_h_blank, 8);
        assert!(f.blank_fraction > 0.0 && f.blank_fraction < 1.0);
        assert!(f.profit_mean > 0.0);
        assert!(f.profit_cv > 0.0);
    }

    #[test]
    fn features_are_invariant_under_candidate_reordering() {
        let inst = instance_1d();
        let perm = [2usize, 0, 1];
        let chars: Vec<Character> = perm.iter().map(|&i| *inst.char(i)).collect();
        let repeats: Vec<Vec<u64>> = perm.iter().map(|&i| inst.repeat_row(i).to_vec()).collect();
        let shuffled = Instance::new(inst.stencil(), chars, repeats).unwrap();
        assert_eq!(InstanceFeatures::of(&inst), InstanceFeatures::of(&shuffled));
        // The digest, by contrast, is order-sensitive — the two answers are
        // complementary, not redundant.
        assert_ne!(inst.digest(), shuffled.digest());
    }

    #[test]
    fn free_form_instances_have_no_rows_and_no_cells() {
        let inst = Instance::new(
            Stencil::new(100, 100).unwrap(),
            vec![Character::new(40, 40, [5, 5, 5, 5], 20).unwrap()],
            vec![vec![3]],
        )
        .unwrap();
        let f = InstanceFeatures::of(&inst);
        assert!(!f.is_1d);
        assert_eq!(f.num_rows, 0);
        assert_eq!(f.cells, 0);
    }

    #[test]
    fn zero_profit_instances_have_zero_dispersion() {
        let inst = Instance::new(
            Stencil::with_rows(200, 40, 40).unwrap(),
            vec![
                Character::new(40, 40, [5, 5, 5, 5], 20).unwrap(),
                Character::new(40, 40, [5, 5, 5, 5], 30).unwrap(),
            ],
            vec![vec![0], vec![0]],
        )
        .unwrap();
        let f = InstanceFeatures::of(&inst);
        assert_eq!(f.profit_mean, 0.0);
        assert_eq!(f.profit_cv, 0.0);
    }
}
