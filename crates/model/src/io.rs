//! A small line-oriented text format for OSP instances.
//!
//! The format is self-contained (no serde / JSON dependency) and diff-
//! friendly, so generated benchmark instances can be checked into a
//! repository or shipped to other tools.
//!
//! ```text
//! EBLOW-INSTANCE v1
//! stencil <W> <H> <row_height|0>
//! regions <P>
//! chars <N>
//! <w> <h> <bl> <br> <bb> <bt> <shots> <t_1> ... <t_P>     (N lines)
//! ```
//!
//! Lines starting with `#` and blank lines are ignored.
//!
//! # Example
//!
//! ```
//! use eblow_model::{Character, Instance, Stencil};
//! use eblow_model::io::{to_string, from_str};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = Instance::new(
//!     Stencil::with_rows(200, 80, 40)?,
//!     vec![Character::new(40, 40, [5, 5, 5, 5], 10)?],
//!     vec![vec![3, 4]],
//! )?;
//! let text = to_string(&inst);
//! let back = from_str(&text)?;
//! assert_eq!(inst, back);
//! # Ok(())
//! # }
//! ```

use crate::{Character, Instance, ModelError, Stencil};
use std::fmt::Write as _;

const MAGIC: &str = "EBLOW-INSTANCE v1";

/// Serializes an instance to the text format.
pub fn to_string(instance: &Instance) -> String {
    let mut out = String::new();
    let s = instance.stencil();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(
        out,
        "stencil {} {} {}",
        s.width(),
        s.height(),
        s.row_height().unwrap_or(0)
    );
    let _ = writeln!(out, "regions {}", instance.num_regions());
    let _ = writeln!(out, "chars {}", instance.num_chars());
    for (i, c) in instance.chars().iter().enumerate() {
        let b = c.blanks();
        let _ = write!(
            out,
            "{} {} {} {} {} {} {}",
            c.width(),
            c.height(),
            b.left,
            b.right,
            b.bottom,
            b.top,
            c.vsb_shots()
        );
        for &t in instance.repeat_row(i) {
            let _ = write!(out, " {t}");
        }
        out.push('\n');
    }
    out
}

fn parse_err(line: usize, message: impl Into<String>) -> ModelError {
    ModelError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_u64(tok: &str, line: usize, what: &str) -> Result<u64, ModelError> {
    tok.parse::<u64>()
        .map_err(|_| parse_err(line, format!("invalid {what}: {tok:?}")))
}

/// Parses an instance from the text format.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] with a 1-based line number on any syntax
/// problem, and the underlying model error if the parsed data violates model
/// invariants (e.g. blanks exceeding a character's size).
pub fn from_str(text: &str) -> Result<Instance, ModelError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (ln, magic) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if magic != MAGIC {
        return Err(parse_err(ln, format!("expected header {MAGIC:?}")));
    }

    let (ln, stencil_line) = lines
        .next()
        .ok_or_else(|| parse_err(ln, "missing stencil line"))?;
    let toks: Vec<&str> = stencil_line.split_whitespace().collect();
    if toks.len() != 4 || toks[0] != "stencil" {
        return Err(parse_err(ln, "expected `stencil <W> <H> <row_height|0>`"));
    }
    let w = parse_u64(toks[1], ln, "stencil width")?;
    let h = parse_u64(toks[2], ln, "stencil height")?;
    let rh = parse_u64(toks[3], ln, "row height")?;
    let stencil = if rh == 0 {
        Stencil::new(w, h)?
    } else {
        Stencil::with_rows(w, h, rh)?
    };

    let (ln, regions_line) = lines
        .next()
        .ok_or_else(|| parse_err(ln, "missing regions line"))?;
    let toks: Vec<&str> = regions_line.split_whitespace().collect();
    if toks.len() != 2 || toks[0] != "regions" {
        return Err(parse_err(ln, "expected `regions <P>`"));
    }
    let num_regions = parse_u64(toks[1], ln, "region count")? as usize;

    let (ln, chars_line) = lines
        .next()
        .ok_or_else(|| parse_err(ln, "missing chars line"))?;
    let toks: Vec<&str> = chars_line.split_whitespace().collect();
    if toks.len() != 2 || toks[0] != "chars" {
        return Err(parse_err(ln, "expected `chars <N>`"));
    }
    let num_chars = parse_u64(toks[1], ln, "char count")? as usize;

    let mut chars = Vec::with_capacity(num_chars);
    let mut repeats = Vec::with_capacity(num_chars);
    let mut last_ln = ln;
    for _ in 0..num_chars {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| parse_err(last_ln, "missing character line"))?;
        last_ln = ln;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 7 + num_regions {
            return Err(parse_err(
                ln,
                format!(
                    "expected {} fields (7 + {num_regions} repeats), found {}",
                    7 + num_regions,
                    toks.len()
                ),
            ));
        }
        let vals: Result<Vec<u64>, _> = toks
            .iter()
            .map(|t| parse_u64(t, ln, "character field"))
            .collect();
        let vals = vals?;
        chars.push(Character::new(
            vals[0],
            vals[1],
            [vals[2], vals[3], vals[4], vals[5]],
            vals[6],
        )?);
        repeats.push(vals[7..].to_vec());
    }
    if let Some((ln, _)) = lines.next() {
        return Err(parse_err(ln, "trailing content after character table"));
    }
    Instance::new(stencil, chars, repeats)
}

/// Writes an instance to a file at `path`.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_file(instance: &Instance, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_string(instance))
}

/// Reads an instance from a file at `path`.
///
/// # Errors
///
/// Returns an I/O error or a boxed [`ModelError`] on parse failure.
pub fn read_file(path: &std::path::Path) -> Result<Instance, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_str(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 6, 4, 3], 10).unwrap(),
            Character::new(33, 40, [1, 2, 3, 4], 7).unwrap(),
        ];
        Instance::new(
            Stencil::with_rows(1000, 1000, 40).unwrap(),
            chars,
            vec![vec![3, 0, 9], vec![1, 5, 2]],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_1d() {
        let inst = sample();
        assert_eq!(from_str(&to_string(&inst)).unwrap(), inst);
    }

    #[test]
    fn roundtrip_2d() {
        let chars = vec![Character::new(40, 30, [5, 6, 4, 3], 10).unwrap()];
        let inst = Instance::new(Stencil::new(500, 600).unwrap(), chars, vec![vec![2]]).unwrap();
        assert_eq!(from_str(&to_string(&inst)).unwrap(), inst);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let inst = sample();
        let mut text = String::from("# generated\n\n");
        text.push_str(&to_string(&inst));
        assert_eq!(from_str(&text).unwrap(), inst);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_str("EBLOW-INSTANCE v1\nstencil 10 10\n").unwrap_err();
        assert!(matches!(e, ModelError::Parse { line: 2, .. }), "{e}");
        let e = from_str("nope").unwrap_err();
        assert!(matches!(e, ModelError::Parse { line: 1, .. }));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = "EBLOW-INSTANCE v1\nstencil 100 100 0\nregions 2\nchars 1\n40 40 5 5 5 5 10 1\n";
        let e = from_str(text).unwrap_err();
        assert!(matches!(e, ModelError::Parse { line: 5, .. }), "{e}");
    }

    #[test]
    fn trailing_content_rejected() {
        let mut text = to_string(&sample());
        text.push_str("40 40 5 5 5 5 10 1 1 1\n");
        assert!(from_str(&text).is_err());
    }
}
