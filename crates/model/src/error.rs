use std::fmt;

/// Errors produced when constructing or validating model objects.
///
/// Every constructor in this crate validates its arguments
/// (blanks must fit inside the character, repeat matrices must be
/// rectangular, placements must respect the stencil outline, …) and reports
/// violations through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// Character blanks do not fit inside the character outline.
    BlanksExceedSize {
        /// Axis on which the blanks overflow (`"horizontal"` / `"vertical"`).
        axis: &'static str,
        /// Sum of the two blanks on that axis.
        blanks: u64,
        /// Character extent on that axis.
        size: u64,
    },
    /// A character dimension is zero.
    ZeroDimension,
    /// VSB shot count must be at least 1.
    ZeroShots,
    /// The stencil outline has a zero dimension.
    EmptyStencil,
    /// Row height is zero or larger than the stencil height.
    BadRowHeight {
        /// Offending row height.
        row_height: u64,
        /// Stencil height.
        stencil_height: u64,
    },
    /// The repeat matrix is not `num_chars × num_regions`-rectangular.
    RaggedRepeats {
        /// Index of the character row with the wrong arity.
        char_index: usize,
        /// Number of regions in that row.
        got: usize,
        /// Expected number of regions.
        expected: usize,
    },
    /// An instance must have at least one region.
    NoRegions,
    /// A character id is out of range for the instance.
    UnknownChar {
        /// The offending id.
        id: usize,
        /// Number of characters in the instance.
        num_chars: usize,
    },
    /// A character appears more than once in a placement.
    DuplicateChar {
        /// The duplicated id.
        id: usize,
    },
    /// A 1D placement uses more rows than the stencil provides.
    TooManyRows {
        /// Rows used by the placement.
        got: usize,
        /// Rows available on the stencil.
        available: usize,
    },
    /// A row is wider than the stencil even with maximal blank sharing.
    RowOverflow {
        /// Index of the overflowing row.
        row: usize,
        /// Minimum achievable width of the row contents.
        width: u64,
        /// Stencil width.
        stencil_width: u64,
    },
    /// A 1D placement contains a character whose height exceeds the row height.
    CharTallerThanRow {
        /// The offending id.
        id: usize,
        /// Character height.
        height: u64,
        /// Row height.
        row_height: u64,
    },
    /// The instance has no row structure but a 1D placement was validated.
    NotRowStructured,
    /// A placed character extends outside the stencil outline.
    OutsideOutline {
        /// The offending id.
        id: usize,
    },
    /// Two placed characters overlap more than their shared blanks allow.
    IllegalOverlap {
        /// First character id.
        a: usize,
        /// Second character id.
        b: usize,
    },
    /// A selection mask has the wrong length.
    SelectionLength {
        /// Mask length.
        got: usize,
        /// Expected length (number of characters).
        expected: usize,
    },
    /// A shard band lies outside (or degenerately inside) its parent
    /// instance's stencil.
    ShardBand {
        /// Start of the band (row index for 1D bands, µm for 2D slices).
        start: u64,
        /// Extent of the band (rows for 1D bands, µm for 2D slices).
        extent: u64,
        /// Available extent in the parent (rows or µm).
        available: u64,
    },
    /// Failure while parsing the text instance format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BlanksExceedSize { axis, blanks, size } => write!(
                f,
                "{axis} blanks sum to {blanks} which exceeds the character extent {size}"
            ),
            ModelError::ZeroDimension => write!(f, "character dimensions must be positive"),
            ModelError::ZeroShots => write!(f, "VSB shot count must be at least 1"),
            ModelError::EmptyStencil => write!(f, "stencil dimensions must be positive"),
            ModelError::BadRowHeight {
                row_height,
                stencil_height,
            } => write!(
                f,
                "row height {row_height} is invalid for stencil height {stencil_height}"
            ),
            ModelError::RaggedRepeats {
                char_index,
                got,
                expected,
            } => write!(
                f,
                "repeat row {char_index} has {got} regions, expected {expected}"
            ),
            ModelError::NoRegions => write!(f, "an instance needs at least one region"),
            ModelError::UnknownChar { id, num_chars } => {
                write!(
                    f,
                    "character id {id} out of range (instance has {num_chars})"
                )
            }
            ModelError::DuplicateChar { id } => {
                write!(f, "character id {id} appears more than once")
            }
            ModelError::TooManyRows { got, available } => {
                write!(f, "placement uses {got} rows but stencil has {available}")
            }
            ModelError::RowOverflow {
                row,
                width,
                stencil_width,
            } => write!(
                f,
                "row {row} needs width {width} exceeding stencil width {stencil_width}"
            ),
            ModelError::CharTallerThanRow {
                id,
                height,
                row_height,
            } => write!(
                f,
                "character {id} of height {height} does not fit row height {row_height}"
            ),
            ModelError::NotRowStructured => {
                write!(
                    f,
                    "instance has no row structure (stencil row height unset)"
                )
            }
            ModelError::OutsideOutline { id } => {
                write!(f, "character {id} extends outside the stencil outline")
            }
            ModelError::IllegalOverlap { a, b } => {
                write!(
                    f,
                    "characters {a} and {b} overlap beyond their shared blanks"
                )
            }
            ModelError::SelectionLength { got, expected } => {
                write!(f, "selection mask has length {got}, expected {expected}")
            }
            ModelError::ShardBand {
                start,
                extent,
                available,
            } => write!(
                f,
                "shard band [{start}, {start}+{extent}) lies outside the parent extent {available}"
            ),
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
