//! Sub-instance extraction and plan stitching for sharded planning.
//!
//! Very large MCC instances decompose naturally: the stencil splits into
//! disjoint row bands (1D) or horizontal slices (2D), and the candidate
//! pool splits into per-shard subsets. Each shard becomes a self-contained
//! [`Instance`] — planners need no sharding awareness at all — and the
//! per-shard plans stitch back into one placement on the original instance.
//!
//! Two invariants make stitching safe:
//!
//! * **Index remapping is explicit.** A [`SubInstance`] carries the map
//!   from its local candidate indices back to the original instance, so a
//!   shard plan's [`CharId`]s translate mechanically.
//! * **Bands are geometric sub-regions.** A shard's stencil has the full
//!   original width and a height that is a contiguous slice of the
//!   original, so any placement legal inside the shard stays legal after
//!   translation — stitching can only *fail* through overlapping bands or
//!   duplicated candidates, both of which [`stitch_1d`]/[`stitch_2d`]
//!   reconcile or reject.
//!
//! Candidate subsets may overlap between shards (a character with repeats
//! in several region groups is a candidate everywhere it matters); the
//! stitchers drop all but the first placement of a duplicated character
//! and report the count, since one stencil slot serves every region.

use crate::{
    CharId, Instance, ModelError, PlacedChar, Placement1d, Placement2d, Row, Selection, Stencil,
};

/// A shard of a larger instance: a candidate subset on a stencil band,
/// plus the bookkeeping needed to translate plans back.
#[derive(Debug, Clone)]
pub struct SubInstance {
    instance: Instance,
    /// `char_map[local] = original` candidate index.
    char_map: Vec<usize>,
    /// First original stencil row covered by the band (1D; 0 for 2D).
    row_offset: usize,
    /// Vertical position of the band's bottom edge in the original
    /// stencil, µm.
    y_offset: u64,
}

impl SubInstance {
    /// Extracts a 1D shard: candidates `chars` on the row band
    /// `start_row .. start_row + band_rows` of `original`'s stencil.
    ///
    /// All regions are kept, so the shard's writing-time accounting uses
    /// the same repeat columns as the original (restricted to its own
    /// candidates).
    ///
    /// # Errors
    ///
    /// [`ModelError::NotRowStructured`] for 2D originals,
    /// [`ModelError::ShardBand`] for empty or out-of-range bands,
    /// [`ModelError::UnknownChar`] / [`ModelError::DuplicateChar`] for bad
    /// candidate subsets.
    pub fn extract_rows(
        original: &Instance,
        chars: &[usize],
        start_row: usize,
        band_rows: usize,
    ) -> Result<Self, ModelError> {
        let total_rows = original.num_rows()?;
        let row_height = original
            .stencil()
            .row_height()
            .ok_or(ModelError::NotRowStructured)?;
        if band_rows == 0 || start_row + band_rows > total_rows {
            return Err(ModelError::ShardBand {
                start: start_row as u64,
                extent: band_rows as u64,
                available: total_rows as u64,
            });
        }
        let stencil = Stencil::with_rows(
            original.stencil().width(),
            band_rows as u64 * row_height,
            row_height,
        )?;
        let instance = Self::subset_instance(original, chars, stencil)?;
        Ok(SubInstance {
            instance,
            char_map: chars.to_vec(),
            row_offset: start_row,
            y_offset: start_row as u64 * row_height,
        })
    }

    /// Extracts a 2D shard: candidates `chars` on the horizontal slice
    /// `[y_offset, y_offset + band_height)` of `original`'s free-form
    /// stencil.
    ///
    /// # Errors
    ///
    /// [`ModelError::ShardBand`] for empty or out-of-range slices (or a
    /// row-structured original, which should shard by rows instead), plus
    /// the candidate-subset errors of [`SubInstance::extract_rows`].
    pub fn extract_band(
        original: &Instance,
        chars: &[usize],
        y_offset: u64,
        band_height: u64,
    ) -> Result<Self, ModelError> {
        let height = original.stencil().height();
        if original.stencil().row_height().is_some()
            || band_height == 0
            || y_offset + band_height > height
        {
            return Err(ModelError::ShardBand {
                start: y_offset,
                extent: band_height,
                available: height,
            });
        }
        let stencil = Stencil::new(original.stencil().width(), band_height)?;
        let instance = Self::subset_instance(original, chars, stencil)?;
        Ok(SubInstance {
            instance,
            char_map: chars.to_vec(),
            row_offset: 0,
            y_offset,
        })
    }

    fn subset_instance(
        original: &Instance,
        chars: &[usize],
        stencil: Stencil,
    ) -> Result<Instance, ModelError> {
        let regions = original.num_regions();
        let mut seen = vec![false; original.num_chars()];
        let mut sub_chars = Vec::with_capacity(chars.len());
        let mut sub_repeats = Vec::with_capacity(chars.len() * regions);
        for &i in chars {
            if i >= original.num_chars() {
                return Err(ModelError::UnknownChar {
                    id: i,
                    num_chars: original.num_chars(),
                });
            }
            if seen[i] {
                return Err(ModelError::DuplicateChar { id: i });
            }
            seen[i] = true;
            sub_chars.push(*original.char(i));
            sub_repeats.extend_from_slice(original.repeat_row(i));
        }
        Instance::from_flat(stencil, sub_chars, sub_repeats, regions)
    }

    /// The extracted shard instance.
    #[inline]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Local candidate index → original candidate index.
    #[inline]
    pub fn char_map(&self) -> &[usize] {
        &self.char_map
    }

    /// First original stencil row covered by a 1D band (0 for 2D slices).
    #[inline]
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Bottom edge of the band in the original stencil, µm.
    #[inline]
    pub fn y_offset(&self) -> u64 {
        self.y_offset
    }

    /// Maps a local candidate index back to the original instance.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownChar`] if `local` is out of range for this
    /// shard.
    pub fn to_original(&self, local: usize) -> Result<usize, ModelError> {
        self.char_map
            .get(local)
            .copied()
            .ok_or(ModelError::UnknownChar {
                id: local,
                num_chars: self.char_map.len(),
            })
    }
}

/// A stitched sharded plan, re-expressed on the original instance.
#[derive(Debug, Clone)]
pub struct Stitched1d {
    /// The combined placement (validated against the original instance).
    pub placement: Placement1d,
    /// The induced selection over the original candidates.
    pub selection: Selection,
    /// Characters that were selected by more than one shard; every
    /// occurrence after the first was dropped during reconciliation (one
    /// stencil slot serves all regions).
    pub duplicates_dropped: usize,
}

/// Stitches per-shard 1D placements back onto the original instance.
///
/// Each part's rows land at `row_offset + local_row`; a character placed by
/// several shards keeps only its first occurrence (dropping a character
/// from a row can only shrink the row, so reconciliation never invalidates
/// a band). The result is validated against `original` before it is
/// returned.
///
/// # Errors
///
/// [`ModelError::TooManyRows`] if a band extends past the original
/// stencil, [`ModelError::UnknownChar`] for broken index maps, and any
/// validation error of [`Placement1d::validate`] (e.g. overlapping bands
/// producing an over-wide row).
pub fn stitch_1d(
    original: &Instance,
    parts: &[(&SubInstance, &Placement1d)],
) -> Result<Stitched1d, ModelError> {
    let total_rows = original.num_rows()?;
    let mut rows = vec![Row::new(); total_rows];
    let mut seen = vec![false; original.num_chars()];
    let mut duplicates_dropped = 0usize;
    for (sub, placement) in parts {
        for (local_row, row) in placement.rows().iter().enumerate() {
            let target = sub.row_offset() + local_row;
            if target >= total_rows {
                return Err(ModelError::TooManyRows {
                    got: target + 1,
                    available: total_rows,
                });
            }
            for id in row.order() {
                let original_id = sub.to_original(id.index())?;
                if seen[original_id] {
                    duplicates_dropped += 1;
                    continue;
                }
                seen[original_id] = true;
                rows[target].push_right(CharId::from(original_id));
            }
        }
    }
    let placement = Placement1d::from_rows(rows);
    placement.validate(original)?;
    let selection = placement.selection(original.num_chars());
    Ok(Stitched1d {
        placement,
        selection,
        duplicates_dropped,
    })
}

/// A stitched sharded 2D plan, re-expressed on the original instance.
#[derive(Debug, Clone)]
pub struct Stitched2d {
    /// The combined placement (validated against the original instance).
    pub placement: Placement2d,
    /// The induced selection over the original candidates.
    pub selection: Selection,
    /// Duplicate placements dropped during reconciliation.
    pub duplicates_dropped: usize,
}

/// Stitches per-shard 2D placements back onto the original instance.
///
/// Every placed character is translated up by its shard's
/// [`SubInstance::y_offset`]; duplicates keep only their first occurrence.
/// The result is validated against `original` (pairwise separation
/// included — bands are geometrically disjoint, but validation is the
/// contract, not an assumption).
///
/// # Errors
///
/// [`ModelError::UnknownChar`] for broken index maps and any validation
/// error of [`Placement2d::validate`].
pub fn stitch_2d(
    original: &Instance,
    parts: &[(&SubInstance, &Placement2d)],
) -> Result<Stitched2d, ModelError> {
    let mut placed = Vec::new();
    let mut seen = vec![false; original.num_chars()];
    let mut duplicates_dropped = 0usize;
    for (sub, placement) in parts {
        for pc in placement.placed() {
            let original_id = sub.to_original(pc.id.index())?;
            if seen[original_id] {
                duplicates_dropped += 1;
                continue;
            }
            seen[original_id] = true;
            placed.push(PlacedChar {
                id: CharId::from(original_id),
                x: pc.x,
                y: pc.y + sub.y_offset() as i64,
            });
        }
    }
    let placement = Placement2d::from_placed(placed);
    placement.validate(original)?;
    let selection = placement.selection(original.num_chars());
    Ok(Stitched2d {
        placement,
        selection,
        duplicates_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Character;

    fn inst_1d() -> Instance {
        let chars: Vec<Character> = (0..6)
            .map(|k| Character::new(30 + k, 40, [4, 4, 0, 0], 10).unwrap())
            .collect();
        let repeats = (0..6).map(|k| vec![k as u64, 6 - k as u64]).collect();
        Instance::new(Stencil::with_rows(200, 160, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn extract_rows_remaps_and_keeps_regions() {
        let inst = inst_1d();
        let sub = SubInstance::extract_rows(&inst, &[4, 1], 2, 2).unwrap();
        assert_eq!(sub.instance().num_chars(), 2);
        assert_eq!(sub.instance().num_regions(), 2);
        assert_eq!(sub.instance().num_rows().unwrap(), 2);
        assert_eq!(sub.char_map(), &[4, 1]);
        assert_eq!(sub.row_offset(), 2);
        assert_eq!(sub.y_offset(), 80);
        // Local 0 is original 4: width 34, repeats [4, 2].
        assert_eq!(sub.instance().char(0).width(), 34);
        assert_eq!(sub.instance().repeat_row(0), &[4, 2]);
        assert_eq!(sub.to_original(1).unwrap(), 1);
        assert!(sub.to_original(2).is_err());
    }

    #[test]
    fn extract_rejects_bad_bands_and_subsets() {
        let inst = inst_1d();
        assert!(matches!(
            SubInstance::extract_rows(&inst, &[0], 3, 2),
            Err(ModelError::ShardBand { .. })
        ));
        assert!(matches!(
            SubInstance::extract_rows(&inst, &[0], 0, 0),
            Err(ModelError::ShardBand { .. })
        ));
        assert!(matches!(
            SubInstance::extract_rows(&inst, &[0, 0], 0, 1),
            Err(ModelError::DuplicateChar { id: 0 })
        ));
        assert!(matches!(
            SubInstance::extract_rows(&inst, &[9], 0, 1),
            Err(ModelError::UnknownChar { id: 9, .. })
        ));
    }

    #[test]
    fn stitch_1d_translates_rows_and_drops_duplicates() {
        let inst = inst_1d();
        // Shard A: originals {0, 2} on rows 0..2; shard B: {2, 5} on rows 2..4.
        let a = SubInstance::extract_rows(&inst, &[0, 2], 0, 2).unwrap();
        let b = SubInstance::extract_rows(&inst, &[2, 5], 2, 2).unwrap();
        let pa = Placement1d::from_rows(vec![
            Row::from_order(vec![CharId(0), CharId(1)]), // originals 0, 2
            Row::new(),
        ]);
        let pb = Placement1d::from_rows(vec![
            Row::from_order(vec![CharId(0)]), // original 2 again: duplicate
            Row::from_order(vec![CharId(1)]), // original 5
        ]);
        let stitched = stitch_1d(&inst, &[(&a, &pa), (&b, &pb)]).unwrap();
        assert_eq!(stitched.duplicates_dropped, 1);
        assert_eq!(stitched.selection.count(), 3);
        assert!(stitched.selection.contains(0));
        assert!(stitched.selection.contains(2));
        assert!(stitched.selection.contains(5));
        // Original 5 landed on original row 3 (= offset 2 + local 1).
        assert_eq!(stitched.placement.rows()[3].order(), &[CharId(5)]);
        stitched.placement.validate(&inst).unwrap();
    }

    #[test]
    fn stitch_1d_rejects_bands_past_the_stencil() {
        let inst = inst_1d();
        let a = SubInstance::extract_rows(&inst, &[0], 3, 1).unwrap();
        // A two-row placement from a one-row shard walks off the stencil.
        let pa = Placement1d::from_rows(vec![Row::new(), Row::from_order(vec![CharId(0)])]);
        assert!(matches!(
            stitch_1d(&inst, &[(&a, &pa)]),
            Err(ModelError::TooManyRows { .. })
        ));
    }

    fn inst_2d() -> Instance {
        let chars: Vec<Character> = (0..4)
            .map(|_| Character::new(40, 40, [5, 5, 5, 5], 10).unwrap())
            .collect();
        let repeats = vec![vec![3]; 4];
        Instance::new(Stencil::new(100, 200).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn stitch_2d_translates_bands_and_validates() {
        let inst = inst_2d();
        let a = SubInstance::extract_band(&inst, &[0, 1], 0, 100).unwrap();
        let b = SubInstance::extract_band(&inst, &[2, 3], 100, 100).unwrap();
        assert_eq!(b.y_offset(), 100);
        let pa = Placement2d::from_placed(vec![
            PlacedChar {
                id: CharId(0),
                x: 0,
                y: 0,
            },
            PlacedChar {
                id: CharId(1),
                x: 35,
                y: 0,
            },
        ]);
        let pb = Placement2d::from_placed(vec![PlacedChar {
            id: CharId(0), // original 2
            x: 0,
            y: 10,
        }]);
        let stitched = stitch_2d(&inst, &[(&a, &pa), (&b, &pb)]).unwrap();
        assert_eq!(stitched.duplicates_dropped, 0);
        assert_eq!(stitched.selection.count(), 3);
        // Original 2 is translated up by the band offset.
        let placed = stitched.placement.placed();
        assert_eq!(placed[2].id, CharId(2));
        assert_eq!(placed[2].y, 110);
        stitched.placement.validate(&inst).unwrap();
    }

    #[test]
    fn extract_band_rejects_row_structured_and_oversized() {
        let inst1d = inst_1d();
        assert!(matches!(
            SubInstance::extract_band(&inst1d, &[0], 0, 40),
            Err(ModelError::ShardBand { .. })
        ));
        let inst2d = inst_2d();
        assert!(matches!(
            SubInstance::extract_band(&inst2d, &[0], 150, 100),
            Err(ModelError::ShardBand { .. })
        ));
    }
}
