//! Domain model for overlapping-aware stencil planning (OSP) in MCC e-beam
//! lithography systems.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! E-BLOW workspace:
//!
//! * [`Character`] — a stencil character candidate: outer size, blank margins
//!   on all four sides, and its VSB shot count `n_i`.
//! * [`Instance`] — a full OSP instance: the stencil outline, the set of
//!   character candidates, and the repeat matrix `t_ic` over the `P` wafer
//!   regions of an MCC system.
//! * [`Selection`] — which candidates are on the stencil; writing-time
//!   accounting per Eqn. (1) of the paper.
//! * [`Placement1d`] / [`Placement2d`] — physical placements with
//!   blank-sharing ("overlapping") semantics, plus validators.
//! * [`overlap`] — the blank-sharing arithmetic, including Lemma 1.
//! * [`simulate`] — a shot-by-shot simulator of the MCC writing process
//!   that independently validates the Eqn. (1) accounting.
//! * [`io`] — a small self-contained text format for instances.
//!
//! All geometric quantities are integer micrometers (`u64`); shot counts and
//! writing times are integer shots (`u64`). Nothing in this crate is
//! stochastic.
//!
//! # Example
//!
//! ```
//! use eblow_model::{Character, Instance, Stencil, Selection};
//!
//! # fn main() -> Result<(), eblow_model::ModelError> {
//! let chars = vec![
//!     Character::new(40, 40, [5, 5, 5, 5], 20)?,
//!     Character::new(50, 40, [8, 6, 5, 5], 35)?,
//! ];
//! // One region; character 0 repeats 10 times, character 1 repeats 4 times.
//! let inst = Instance::new(Stencil::with_rows(200, 40, 40)?, chars, vec![vec![10], vec![4]])?;
//! let sel = Selection::from_indices(inst.num_chars(), [0]);
//! // T = t_00*n_0 + t_10*n_1 - t_00*(n_0-1) = 10*20 + 4*35 - 10*19 = 150
//! assert_eq!(inst.total_writing_time(&sel), 150);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod character;
mod digest;
mod error;
mod features;
mod instance;
pub mod io;
pub mod overlap;
mod placement1d;
mod placement2d;
mod selection;
pub mod shard;
pub mod simulate;

pub use character::{Blanks, CharId, Character};
pub use digest::{Fnv64, InstanceDigest};
pub use error::ModelError;
pub use features::InstanceFeatures;
pub use instance::{Instance, SparseRepeat, Stencil};
pub use placement1d::{Placement1d, Row};
pub use placement2d::{PlacedChar, Placement2d};
pub use selection::Selection;
pub use shard::{stitch_1d, stitch_2d, Stitched1d, Stitched2d, SubInstance};
