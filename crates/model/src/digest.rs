//! Content digests of planning instances.
//!
//! An [`InstanceDigest`] is a stable 128-bit fingerprint of everything that
//! determines an instance's planning outcome: the stencil outline (including
//! row structure), every character's geometry, blanks, and shot count, and
//! the full repeat matrix `t_ic`. Two instances with equal digests are
//! planning-equivalent, so a digest can key a plan cache (`eblow-engine`
//! does exactly that) or deduplicate request queues.
//!
//! The hash is a self-contained FNV-1a variant run twice with independent
//! offset bases — no external crates, no `std::hash::Hasher` (whose output
//! is explicitly not stable across releases). The digest is therefore stable
//! across processes, platforms, and compiler versions, which makes it safe
//! to persist.

use crate::Instance;
use core::fmt;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const OFFSET_LO: u64 = 0xCBF2_9CE4_8422_2325; // standard FNV-1a basis
const OFFSET_HI: u64 = 0x6C62_272E_07BB_0142; // FNV-0 of a distinct seed

/// A streaming 64-bit FNV-1a hasher with the same stability guarantee as
/// [`InstanceDigest`]: output never changes across processes, platforms, or
/// compiler versions (unlike `std::hash::Hasher` implementations). Shared
/// by the digest below and by `eblow-engine`'s cache-key fingerprints so
/// the constants live in exactly one place.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(OFFSET_LO)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: impl IntoIterator<Item = u8>) {
        for b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A 128-bit stable content fingerprint of an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceDigest {
    lo: u64,
    hi: u64,
}

impl InstanceDigest {
    /// Computes the digest of `instance`.
    pub fn of(instance: &Instance) -> Self {
        let mut d = DigestWriter::new();
        let s = instance.stencil();
        d.write_u64(s.width());
        d.write_u64(s.height());
        // Row structure changes the planning problem entirely; fold the
        // discriminant in, not just the value.
        match s.row_height() {
            Some(rh) => {
                d.write_u64(1);
                d.write_u64(rh);
            }
            None => d.write_u64(0),
        }
        d.write_u64(instance.num_chars() as u64);
        d.write_u64(instance.num_regions() as u64);
        for ch in instance.chars() {
            d.write_u64(ch.width());
            d.write_u64(ch.height());
            let b = ch.blanks();
            d.write_u64(b.left);
            d.write_u64(b.right);
            d.write_u64(b.bottom);
            d.write_u64(b.top);
            d.write_u64(ch.vsb_shots());
        }
        for i in 0..instance.num_chars() {
            for &t in instance.repeat_row(i) {
                d.write_u64(t);
            }
        }
        d.finish()
    }

    /// The digest as a fixed-width hex string (for logs and cache keys).
    pub fn to_hex(self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for InstanceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

struct DigestWriter {
    lo: Fnv64,
    hi: u64,
}

impl DigestWriter {
    fn new() -> Self {
        DigestWriter {
            lo: Fnv64::new(),
            hi: OFFSET_HI,
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.lo.write(v.to_le_bytes());
        for byte in v.to_le_bytes() {
            // The hi lane sees the byte shifted so the two lanes decorrelate.
            self.hi = (self.hi ^ (byte as u64).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> InstanceDigest {
        InstanceDigest {
            lo: self.lo.finish(),
            hi: self.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Character, Instance, Stencil};

    fn base_instance() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 20).unwrap(),
            Character::new(50, 40, [8, 6, 5, 5], 35).unwrap(),
        ];
        Instance::new(
            Stencil::with_rows(200, 40, 40).unwrap(),
            chars,
            vec![vec![10], vec![4]],
        )
        .unwrap()
    }

    #[test]
    fn equal_instances_equal_digests() {
        assert_eq!(
            InstanceDigest::of(&base_instance()),
            InstanceDigest::of(&base_instance())
        );
    }

    #[test]
    fn any_field_change_changes_the_digest() {
        let base = InstanceDigest::of(&base_instance());

        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 20).unwrap(),
            Character::new(50, 40, [8, 6, 5, 5], 36).unwrap(), // shots +1
        ];
        let shots = Instance::new(
            Stencil::with_rows(200, 40, 40).unwrap(),
            chars.clone(),
            vec![vec![10], vec![4]],
        )
        .unwrap();
        assert_ne!(base, InstanceDigest::of(&shots));

        let repeats = Instance::new(
            Stencil::with_rows(200, 40, 40).unwrap(),
            vec![
                Character::new(40, 40, [5, 5, 5, 5], 20).unwrap(),
                Character::new(50, 40, [8, 6, 5, 5], 35).unwrap(),
            ],
            vec![vec![10], vec![5]], // repeat +1
        )
        .unwrap();
        assert_ne!(base, InstanceDigest::of(&repeats));

        let wider = Instance::new(
            Stencil::with_rows(240, 40, 40).unwrap(),
            vec![
                Character::new(40, 40, [5, 5, 5, 5], 20).unwrap(),
                Character::new(50, 40, [8, 6, 5, 5], 35).unwrap(),
            ],
            vec![vec![10], vec![4]],
        )
        .unwrap();
        assert_ne!(base, InstanceDigest::of(&wider));
    }

    #[test]
    fn blank_asymmetry_is_captured() {
        let a = Instance::new(
            Stencil::new(100, 100).unwrap(),
            vec![Character::new(40, 40, [6, 2, 3, 3], 9).unwrap()],
            vec![vec![3]],
        )
        .unwrap();
        let b = Instance::new(
            Stencil::new(100, 100).unwrap(),
            vec![Character::new(40, 40, [2, 6, 3, 3], 9).unwrap()],
            vec![vec![3]],
        )
        .unwrap();
        assert_ne!(InstanceDigest::of(&a), InstanceDigest::of(&b));
    }

    #[test]
    fn hex_is_32_chars_and_stable() {
        let d = InstanceDigest::of(&base_instance());
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, base_instance().digest().to_hex());
    }
}
