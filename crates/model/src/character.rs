use crate::ModelError;
use std::fmt;

/// Identifier of a character candidate inside an [`Instance`].
///
/// The id is the index of the candidate in [`Instance::chars`]; it is a plain
/// newtype so that indices into different collections cannot be confused.
///
/// [`Instance`]: crate::Instance
/// [`Instance::chars`]: crate::Instance::chars
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CharId(pub u32);

impl CharId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for CharId {
    fn from(i: usize) -> Self {
        CharId(i as u32)
    }
}

impl fmt::Display for CharId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Blank margins reserved around a character's pattern body, in micrometers.
///
/// The blank space is reserved clearance between the pattern and the
/// character boundary. Adjacent characters on a stencil may *share* blanks:
/// two horizontally adjacent characters `a` (left) and `b` (right) may be
/// pushed together by [`overlap::h_overlap`]`(a, b) = min(a.right, b.left)`.
///
/// [`overlap::h_overlap`]: crate::overlap::h_overlap
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Blanks {
    /// Blank on the left edge.
    pub left: u64,
    /// Blank on the right edge.
    pub right: u64,
    /// Blank on the bottom edge.
    pub bottom: u64,
    /// Blank on the top edge.
    pub top: u64,
}

impl Blanks {
    /// Creates blanks from `[left, right, bottom, top]`.
    pub fn new(left: u64, right: u64, bottom: u64, top: u64) -> Self {
        Blanks {
            left,
            right,
            bottom,
            top,
        }
    }

    /// Symmetric blank value used by the S-Blank assumption of the simplified
    /// 1D formulation: `ceil((left + right) / 2)` (paper §3.1).
    pub fn symmetric_h(&self) -> u64 {
        (self.left + self.right).div_ceil(2)
    }
}

/// A character candidate: the unit that may be placed on a CP stencil.
///
/// A character occupies `width × height` micrometers on the stencil,
/// including its blank margins. Printing it through the character projection
/// costs **1 shot**; printing the same pattern through VSB costs
/// [`vsb_shots`](Character::vsb_shots) shots (`n_i` in the paper, `n_i ≥ 1`).
///
/// Invariants enforced by [`Character::new`]:
/// * `width > 0`, `height > 0`, `vsb_shots ≥ 1`;
/// * `left + right ≤ width` and `bottom + top ≤ height` (the pattern body is
///   non-negative in both axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Character {
    width: u64,
    height: u64,
    blanks: Blanks,
    vsb_shots: u64,
}

impl Character {
    /// Creates a character.
    ///
    /// `blanks` is `[left, right, bottom, top]` in micrometers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroDimension`], [`ModelError::ZeroShots`] or
    /// [`ModelError::BlanksExceedSize`] when the invariants documented on
    /// [`Character`] are violated.
    ///
    /// # Example
    ///
    /// ```
    /// use eblow_model::Character;
    /// # fn main() -> Result<(), eblow_model::ModelError> {
    /// let c = Character::new(40, 40, [5, 7, 4, 4], 25)?;
    /// assert_eq!(c.pattern_width(), 40 - 5 - 7);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(
        width: u64,
        height: u64,
        blanks: [u64; 4],
        vsb_shots: u64,
    ) -> Result<Self, ModelError> {
        let blanks = Blanks::new(blanks[0], blanks[1], blanks[2], blanks[3]);
        if width == 0 || height == 0 {
            return Err(ModelError::ZeroDimension);
        }
        if vsb_shots == 0 {
            return Err(ModelError::ZeroShots);
        }
        if blanks.left + blanks.right > width {
            return Err(ModelError::BlanksExceedSize {
                axis: "horizontal",
                blanks: blanks.left + blanks.right,
                size: width,
            });
        }
        if blanks.bottom + blanks.top > height {
            return Err(ModelError::BlanksExceedSize {
                axis: "vertical",
                blanks: blanks.bottom + blanks.top,
                size: height,
            });
        }
        Ok(Character {
            width,
            height,
            blanks,
            vsb_shots,
        })
    }

    /// Creates a character with identical blanks on all four sides.
    ///
    /// # Errors
    ///
    /// Same as [`Character::new`].
    pub fn with_uniform_blank(
        width: u64,
        height: u64,
        blank: u64,
        vsb_shots: u64,
    ) -> Result<Self, ModelError> {
        Character::new(width, height, [blank, blank, blank, blank], vsb_shots)
    }

    /// Total width including blanks, in micrometers.
    #[inline]
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Total height including blanks, in micrometers.
    #[inline]
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The blank margins.
    #[inline]
    pub fn blanks(&self) -> Blanks {
        self.blanks
    }

    /// Number of VSB shots needed to write this pattern without the stencil
    /// (`n_i` in the paper).
    #[inline]
    pub fn vsb_shots(&self) -> u64 {
        self.vsb_shots
    }

    /// Width of the pattern body (width minus horizontal blanks).
    #[inline]
    pub fn pattern_width(&self) -> u64 {
        self.width - self.blanks.left - self.blanks.right
    }

    /// Height of the pattern body (height minus vertical blanks).
    #[inline]
    pub fn pattern_height(&self) -> u64 {
        self.height - self.blanks.bottom - self.blanks.top
    }

    /// Area of the character outline in µm².
    #[inline]
    pub fn area(&self) -> u64 {
        self.width * self.height
    }

    /// Symmetric horizontal blank `s_i = ceil((sl_i + sr_i)/2)` used by the
    /// simplified 1D formulation (paper §3.1).
    #[inline]
    pub fn symmetric_blank(&self) -> u64 {
        (self.blanks.left + self.blanks.right).div_ceil(2)
    }

    /// Effective width under the S-Blank assumption: `w_i − s_i`.
    ///
    /// Lemma 1 shows a full row of S-Blank characters packs into
    /// `Σ (w_i − s_i) + max_i s_i`, so `w_i − s_i` acts as the per-character
    /// capacity consumption.
    #[inline]
    pub fn effective_width(&self) -> u64 {
        self.width - self.symmetric_blank().min(self.width)
    }

    /// Per-use shot saving when this character is on the stencil:
    /// `n_i − 1` shots per repetition.
    #[inline]
    pub fn shot_saving(&self) -> u64 {
        self.vsb_shots - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_blanks() {
        assert!(Character::new(10, 10, [6, 5, 0, 0], 1).is_err());
        assert!(Character::new(10, 10, [0, 0, 6, 5], 1).is_err());
        assert!(Character::new(10, 10, [5, 5, 5, 5], 1).is_ok());
    }

    #[test]
    fn new_rejects_zero() {
        assert_eq!(
            Character::new(0, 10, [0, 0, 0, 0], 1),
            Err(ModelError::ZeroDimension)
        );
        assert_eq!(
            Character::new(10, 0, [0, 0, 0, 0], 1),
            Err(ModelError::ZeroDimension)
        );
        assert_eq!(
            Character::new(10, 10, [0, 0, 0, 0], 0),
            Err(ModelError::ZeroShots)
        );
    }

    #[test]
    fn pattern_dims() {
        let c = Character::new(40, 30, [3, 5, 2, 4], 9).unwrap();
        assert_eq!(c.pattern_width(), 32);
        assert_eq!(c.pattern_height(), 24);
        assert_eq!(c.area(), 1200);
        assert_eq!(c.shot_saving(), 8);
    }

    #[test]
    fn symmetric_blank_rounds_up() {
        let c = Character::new(40, 40, [3, 4, 0, 0], 2).unwrap();
        assert_eq!(c.symmetric_blank(), 4); // ceil(7/2)
        let d = Character::new(40, 40, [4, 4, 0, 0], 2).unwrap();
        assert_eq!(d.symmetric_blank(), 4);
    }

    #[test]
    fn char_id_display_and_index() {
        let id = CharId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "c7");
        assert_eq!(CharId::from(3usize), CharId(3));
    }
}
