use crate::{overlap, CharId, Instance, ModelError, Selection};

/// One stencil row of a 1D placement: characters in left-to-right order.
///
/// Positions are implicit: characters pack left with maximal blank sharing,
/// so the row's minimum width is `Σ w_i − Σ min(sr_i, sl_{i+1})`
/// (see [`overlap::row_width_ordered`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    order: Vec<CharId>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// A row with the given left-to-right order.
    pub fn from_order(order: Vec<CharId>) -> Self {
        Row { order }
    }

    /// Characters in left-to-right order.
    #[inline]
    pub fn order(&self) -> &[CharId] {
        &self.order
    }

    /// Number of characters on the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the row holds no characters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Appends a character at the right end.
    pub fn push_right(&mut self, id: CharId) {
        self.order.push(id);
    }

    /// Prepends a character at the left end.
    pub fn push_left(&mut self, id: CharId) {
        self.order.insert(0, id);
    }

    /// Inserts a character at position `pos` (0 = leftmost).
    ///
    /// # Panics
    ///
    /// Panics if `pos > len()`.
    pub fn insert(&mut self, pos: usize, id: CharId) {
        self.order.insert(pos, id);
    }

    /// Removes and returns the character at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn remove(&mut self, pos: usize) -> CharId {
        self.order.remove(pos)
    }

    /// Replaces the character at `pos`, returning the old occupant.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn replace(&mut self, pos: usize, id: CharId) -> CharId {
        std::mem::replace(&mut self.order[pos], id)
    }

    /// Minimum width of this row under maximal blank sharing.
    pub fn min_width(&self, instance: &Instance) -> u64 {
        let chars: Vec<_> = self
            .order
            .iter()
            .map(|id| instance.char(id.index()))
            .collect();
        overlap::row_width_ordered(&chars)
    }

    /// Width change if `id` were inserted at position `pos`, given maximal
    /// sharing with the new neighbours. Negative deltas are impossible.
    pub fn insertion_delta(&self, instance: &Instance, pos: usize, id: CharId) -> u64 {
        let u = instance.char(id.index());
        let left = pos
            .checked_sub(1)
            .map(|p| instance.char(self.order[p].index()));
        let right = self.order.get(pos).map(|r| instance.char(r.index()));
        let gain_left = left.map_or(0, |l| overlap::h_overlap(l, u));
        let gain_right = right.map_or(0, |r| overlap::h_overlap(u, r));
        let lost = match (left, right) {
            (Some(l), Some(r)) => overlap::h_overlap(l, r),
            _ => 0,
        };
        u.width() + lost - gain_left - gain_right
    }

    /// X positions of every character when the row is packed flush-left with
    /// maximal sharing. Returned in row order.
    pub fn packed_positions(&self, instance: &Instance) -> Vec<u64> {
        let mut xs = Vec::with_capacity(self.order.len());
        let mut x = 0u64;
        for (k, id) in self.order.iter().enumerate() {
            if k > 0 {
                let prev = instance.char(self.order[k - 1].index());
                let cur = instance.char(id.index());
                x += prev.width() - overlap::h_overlap(prev, cur);
            }
            xs.push(x);
            let _ = instance.char(id.index());
        }
        xs
    }
}

impl FromIterator<CharId> for Row {
    fn from_iter<T: IntoIterator<Item = CharId>>(iter: T) -> Self {
        Row::from_order(iter.into_iter().collect())
    }
}

/// A full 1D stencil placement: one [`Row`] per stencil row.
///
/// Produced by the 1D planners in `eblow-core`. A placement determines the
/// [`Selection`] (every character on some row is on the stencil) and can be
/// validated against the instance with [`Placement1d::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement1d {
    rows: Vec<Row>,
}

impl Placement1d {
    /// An empty placement with `num_rows` rows.
    pub fn empty(num_rows: usize) -> Self {
        Placement1d {
            rows: vec![Row::new(); num_rows],
        }
    }

    /// Builds a placement from explicit rows.
    pub fn from_rows(rows: Vec<Row>) -> Self {
        Placement1d { rows }
    }

    /// The rows of the placement.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut Row {
        &mut self.rows[r]
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of placed characters.
    pub fn num_placed(&self) -> usize {
        self.rows.iter().map(Row::len).sum()
    }

    /// The selection induced by this placement.
    pub fn selection(&self, num_chars: usize) -> Selection {
        Selection::from_indices(
            num_chars,
            self.rows
                .iter()
                .flat_map(|r| r.order().iter().map(|c| c.index())),
        )
    }

    /// Validates the placement against an instance:
    ///
    /// * the instance is row-structured and has at least `rows.len()` rows;
    /// * every id is in range and appears at most once;
    /// * every character fits the row height;
    /// * every row's minimum width fits the stencil width.
    ///
    /// # Errors
    ///
    /// The first violation found is reported as a [`ModelError`].
    pub fn validate(&self, instance: &Instance) -> Result<(), ModelError> {
        let num_rows = instance.num_rows()?;
        if self.rows.len() > num_rows {
            return Err(ModelError::TooManyRows {
                got: self.rows.len(),
                available: num_rows,
            });
        }
        let row_height = instance
            .stencil()
            .row_height()
            .ok_or(ModelError::NotRowStructured)?;
        let mut seen = vec![false; instance.num_chars()];
        for (r, row) in self.rows.iter().enumerate() {
            for id in row.order() {
                let i = id.index();
                if i >= instance.num_chars() {
                    return Err(ModelError::UnknownChar {
                        id: i,
                        num_chars: instance.num_chars(),
                    });
                }
                if seen[i] {
                    return Err(ModelError::DuplicateChar { id: i });
                }
                seen[i] = true;
                let h = instance.char(i).height();
                if h > row_height {
                    return Err(ModelError::CharTallerThanRow {
                        id: i,
                        height: h,
                        row_height,
                    });
                }
            }
            let w = row.min_width(instance);
            if w > instance.stencil().width() {
                return Err(ModelError::RowOverflow {
                    row: r,
                    width: w,
                    stencil_width: instance.stencil().width(),
                });
            }
        }
        Ok(())
    }

    /// System writing time of the placement's induced selection.
    pub fn total_writing_time(&self, instance: &Instance) -> u64 {
        instance.total_writing_time(&self.selection(instance.num_chars()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Character, Stencil};

    fn inst() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 0, 0], 10).unwrap(),
            Character::new(40, 40, [3, 8, 0, 0], 10).unwrap(),
            Character::new(40, 40, [6, 2, 0, 0], 10).unwrap(),
            Character::new(40, 50, [1, 1, 0, 0], 10).unwrap(), // too tall for a row
        ];
        let repeats = vec![vec![1]; 4];
        Instance::new(Stencil::with_rows(100, 80, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn row_width_and_positions() {
        let inst = inst();
        let row = Row::from_order(vec![CharId(0), CharId(1), CharId(2)]);
        // overlaps: min(5,3)=3 between 0-1, min(8,6)=6 between 1-2
        assert_eq!(row.min_width(&inst), 120 - 3 - 6);
        assert_eq!(row.packed_positions(&inst), vec![0, 37, 71]);
    }

    #[test]
    fn insertion_delta_accounts_for_lost_overlap() {
        let inst = inst();
        let row = Row::from_order(vec![CharId(0), CharId(2)]);
        // current adjacent overlap 0-2: min(5,6)=5
        // inserting 1 between: gains min(5,3)=3 and min(8,6)=6, loses 5
        assert_eq!(row.insertion_delta(&inst, 1, CharId(1)), 40 + 5 - 3 - 6);
        // inserting 1 at right end: gains min(2,3)=2
        assert_eq!(row.insertion_delta(&inst, 2, CharId(1)), 40 - 2);
        // inserting 1 at left end: gains min(8,5)=5
        assert_eq!(row.insertion_delta(&inst, 0, CharId(1)), 40 - 5);
    }

    #[test]
    fn validate_accepts_legal_placement() {
        let inst = inst();
        let p = Placement1d::from_rows(vec![
            Row::from_order(vec![CharId(0), CharId(1)]),
            Row::from_order(vec![CharId(2)]),
        ]);
        assert!(p.validate(&inst).is_ok());
        assert_eq!(p.num_placed(), 3);
        assert_eq!(p.selection(4).count(), 3);
    }

    #[test]
    fn validate_rejects_overflow_duplicate_tall() {
        let inst = inst();
        let wide =
            Placement1d::from_rows(vec![Row::from_order(vec![CharId(0), CharId(1), CharId(2)])]);
        assert!(matches!(
            wide.validate(&inst),
            Err(ModelError::RowOverflow { .. })
        ));

        let dup = Placement1d::from_rows(vec![
            Row::from_order(vec![CharId(0)]),
            Row::from_order(vec![CharId(0)]),
        ]);
        assert!(matches!(
            dup.validate(&inst),
            Err(ModelError::DuplicateChar { id: 0 })
        ));

        let tall = Placement1d::from_rows(vec![Row::from_order(vec![CharId(3)])]);
        assert!(matches!(
            tall.validate(&inst),
            Err(ModelError::CharTallerThanRow { id: 3, .. })
        ));

        let many = Placement1d::empty(3);
        assert!(matches!(
            many.validate(&inst),
            Err(ModelError::TooManyRows {
                got: 3,
                available: 2
            })
        ));
    }
}
