use crate::{Character, ModelError, Selection};

/// The stencil outline and optional row structure.
///
/// A 1DOSP instance has `row_height` set: the stencil is partitioned into
/// `floor(height / row_height)` standard-cell rows. A 2DOSP instance leaves
/// `row_height` unset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stencil {
    width: u64,
    height: u64,
    row_height: Option<u64>,
}

impl Stencil {
    /// Creates a free-form (2D) stencil of `width × height` micrometers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyStencil`] if either dimension is zero.
    pub fn new(width: u64, height: u64) -> Result<Self, ModelError> {
        if width == 0 || height == 0 {
            return Err(ModelError::EmptyStencil);
        }
        Ok(Stencil {
            width,
            height,
            row_height: None,
        })
    }

    /// Creates a row-structured (1D) stencil.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyStencil`] for zero dimensions and
    /// [`ModelError::BadRowHeight`] if `row_height` is zero or exceeds the
    /// stencil height.
    pub fn with_rows(width: u64, height: u64, row_height: u64) -> Result<Self, ModelError> {
        let mut s = Stencil::new(width, height)?;
        if row_height == 0 || row_height > height {
            return Err(ModelError::BadRowHeight {
                row_height,
                stencil_height: height,
            });
        }
        s.row_height = Some(row_height);
        Ok(s)
    }

    /// Stencil width `W` in micrometers.
    #[inline]
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Stencil height `H` in micrometers.
    #[inline]
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Row height for 1D instances, if the stencil is row-structured.
    #[inline]
    pub fn row_height(&self) -> Option<u64> {
        self.row_height
    }

    /// Number of rows (`m` in the paper) for a row-structured stencil,
    /// `None` otherwise.
    #[inline]
    pub fn num_rows(&self) -> Option<usize> {
        self.row_height.map(|rh| (self.height / rh) as usize)
    }
}

/// One nonzero column of a candidate's repeat row, in the CSR sparse view
/// (see [`Instance::sparse_row`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseRepeat {
    /// Region index `c` with `t_ic > 0`.
    pub region: u32,
    /// Repeat count `t_ic`.
    pub repeats: u64,
    /// Precomputed reduction `R_ic = t_ic · (n_i − 1)`.
    pub reduction: u64,
}

/// A complete OSP instance for an MCC system (paper Problem 1).
///
/// The wafer is divided into `P` regions, each written by one CP; all CPs
/// share this stencil. `repeats(i, c)` is `t_ic`, the number of times
/// character candidate `i` appears in region `c`.
///
/// Writing-time accounting (Eqn. (1)):
///
/// ```text
/// T_c      = T_VSB_c − Σ_i R_ic·a_i
/// T_VSB_c  = Σ_i t_ic·n_i
/// R_ic     = t_ic·(n_i − 1)
/// T_total  = max_c T_c
/// ```
///
/// # Storage layout
///
/// The repeat matrix is stored twice, in the two shapes the planners need:
///
/// * **Row-major slab** — one flat `Vec<u64>` of `n × P` entries
///   (`repeats[i·P + c] = t_ic`), serving O(1) dense lookups
///   ([`repeats`](Instance::repeats), [`repeat_row`](Instance::repeat_row))
///   without the pointer chase and heap fragmentation of a `Vec<Vec<u64>>`.
/// * **CSR sparse view** — per candidate, the list of regions with
///   `t_ic > 0` as [`SparseRepeat`] entries carrying the *precomputed*
///   reduction `R_ic = t_ic·(n_i − 1)`. MCC repeat matrices are sparse
///   (most candidates live in a few "home" regions), so the inner loops of
///   profit/writing-time accounting iterate only the nonzero columns and
///   never multiply.
///
/// Derived per-candidate caches: `shot_saving` (`n_i − 1`) and the total
/// reduction `Σ_c R_ic`.
///
/// Invariants (established by the constructors, relied on by
/// `eblow-core`'s accounting):
///
/// * `sparse` entries of a row are in strictly increasing region order and
///   contain exactly the columns with `t_ic > 0`;
/// * `entry.reduction == entry.repeats · shot_saving(i)` exactly (u64);
/// * `total_reduction(i) == Σ` of the row's `reduction` entries;
/// * `vsb_time(c) == Σ_i t_ic · n_i`.
///
/// All dense accessors return values identical to the pre-slab
/// `Vec<Vec<u64>>` layout, and [`InstanceDigest`](crate::InstanceDigest) /
/// [`InstanceFeatures`](crate::InstanceFeatures) are bit-exactly unchanged
/// by the layout — cache keys and selection statistics survive the swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    stencil: Stencil,
    chars: Vec<Character>,
    /// Row-major slab: `repeats[i * num_regions + c] = t_ic`.
    repeats: Vec<u64>,
    num_regions: usize,
    /// Cached `T_VSB_c` per region.
    vsb_times: Vec<u64>,
    /// CSR offsets into `sparse`: row `i` is `sparse[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Nonzero repeat columns with precomputed reductions, row-major.
    sparse: Vec<SparseRepeat>,
    /// Cached `n_i − 1` per candidate.
    shot_savings: Vec<u64>,
    /// Cached `Σ_c R_ic` per candidate.
    total_reductions: Vec<u64>,
}

impl Instance {
    /// Creates an instance from a stencil, candidates, and the repeat matrix.
    ///
    /// `repeats` must have one row per character, each of the same length
    /// `P ≥ 1` (number of regions).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoRegions`] or [`ModelError::RaggedRepeats`] on
    /// malformed repeat matrices.
    pub fn new(
        stencil: Stencil,
        chars: Vec<Character>,
        repeats: Vec<Vec<u64>>,
    ) -> Result<Self, ModelError> {
        if repeats.len() != chars.len() {
            return Err(ModelError::RaggedRepeats {
                char_index: repeats.len().min(chars.len()),
                got: repeats.len(),
                expected: chars.len(),
            });
        }
        let num_regions = repeats.first().map(|r| r.len()).unwrap_or(1);
        for (i, row) in repeats.iter().enumerate() {
            if row.len() != num_regions {
                return Err(ModelError::RaggedRepeats {
                    char_index: i,
                    got: row.len(),
                    expected: num_regions,
                });
            }
        }
        let mut flat = Vec::with_capacity(chars.len() * num_regions);
        for row in &repeats {
            flat.extend_from_slice(row);
        }
        Self::from_flat(stencil, chars, flat, num_regions)
    }

    /// Creates an instance from an already-flat row-major repeat slab
    /// (`flat[i·num_regions + c] = t_ic`) — the allocation-free path for
    /// generators and shard extraction, which otherwise would build a
    /// nested `Vec<Vec<u64>>` only for [`Instance::new`] to flatten again.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoRegions`] when `num_regions == 0` and
    /// [`ModelError::RaggedRepeats`] when `flat.len()` is not exactly
    /// `chars.len() · num_regions`.
    pub fn from_flat(
        stencil: Stencil,
        chars: Vec<Character>,
        flat: Vec<u64>,
        num_regions: usize,
    ) -> Result<Self, ModelError> {
        if num_regions == 0 {
            return Err(ModelError::NoRegions);
        }
        if flat.len() != chars.len() * num_regions {
            let rows = flat.len() / num_regions;
            let remainder = flat.len() % num_regions;
            return Err(if remainder != 0 {
                // A trailing partial row: report its actual arity.
                ModelError::RaggedRepeats {
                    char_index: rows,
                    got: remainder,
                    expected: num_regions,
                }
            } else {
                // Whole rows, wrong count — mirror `Instance::new`'s
                // row-count mismatch reporting.
                ModelError::RaggedRepeats {
                    char_index: rows.min(chars.len()),
                    got: rows,
                    expected: chars.len(),
                }
            });
        }
        let n = chars.len();
        let mut vsb_times = vec![0u64; num_regions];
        let mut offsets = Vec::with_capacity(n + 1);
        let mut sparse = Vec::new();
        let mut shot_savings = Vec::with_capacity(n);
        let mut total_reductions = Vec::with_capacity(n);
        offsets.push(0u32);
        for (i, ch) in chars.iter().enumerate() {
            let saving = ch.shot_saving();
            shot_savings.push(saving);
            let mut total = 0u64;
            for (c, &t) in flat[i * num_regions..(i + 1) * num_regions]
                .iter()
                .enumerate()
            {
                vsb_times[c] += t * ch.vsb_shots();
                if t > 0 {
                    let reduction = t * saving;
                    total += reduction;
                    sparse.push(SparseRepeat {
                        region: c as u32,
                        repeats: t,
                        reduction,
                    });
                }
            }
            total_reductions.push(total);
            offsets.push(sparse.len() as u32);
        }
        Ok(Instance {
            stencil,
            chars,
            repeats: flat,
            num_regions,
            vsb_times,
            offsets,
            sparse,
            shot_savings,
            total_reductions,
        })
    }

    /// The stencil of this instance.
    #[inline]
    pub fn stencil(&self) -> Stencil {
        self.stencil
    }

    /// A stable 128-bit content fingerprint of this instance (see
    /// [`crate::InstanceDigest`]). Equal digests imply planning-equivalent
    /// instances, so the digest can key plan caches.
    pub fn digest(&self) -> crate::InstanceDigest {
        crate::InstanceDigest::of(self)
    }

    /// The character candidates.
    #[inline]
    pub fn chars(&self) -> &[Character] {
        &self.chars
    }

    /// Character candidate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn char(&self, i: usize) -> &Character {
        &self.chars[i]
    }

    /// Number of character candidates `n`.
    #[inline]
    pub fn num_chars(&self) -> usize {
        self.chars.len()
    }

    /// Number of wafer regions `P` (one per CP).
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Repeat count `t_ic` of character `i` in region `c`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `c` is out of range.
    #[inline]
    pub fn repeats(&self, i: usize, c: usize) -> u64 {
        debug_assert!(c < self.num_regions);
        self.repeats[i * self.num_regions + c]
    }

    /// The full repeat row of character `i` across all regions.
    #[inline]
    pub fn repeat_row(&self, i: usize) -> &[u64] {
        &self.repeats[i * self.num_regions..(i + 1) * self.num_regions]
    }

    /// The nonzero repeat columns of character `i` with precomputed
    /// reductions, in increasing region order — the CSR view the hot
    /// accounting loops iterate instead of scanning all `P` columns.
    #[inline]
    pub fn sparse_row(&self, i: usize) -> &[SparseRepeat] {
        &self.sparse[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Cached per-use shot saving `n_i − 1` of character `i`.
    #[inline]
    pub fn shot_saving(&self, i: usize) -> u64 {
        self.shot_savings[i]
    }

    /// Pure-VSB writing time `T_VSB_c` of region `c`.
    #[inline]
    pub fn vsb_time(&self, c: usize) -> u64 {
        self.vsb_times[c]
    }

    /// Pure-VSB writing times for all regions.
    #[inline]
    pub fn vsb_times(&self) -> &[u64] {
        &self.vsb_times
    }

    /// Writing-time reduction `R_ic = t_ic·(n_i − 1)` contributed by putting
    /// character `i` on the stencil, for region `c`.
    #[inline]
    pub fn reduction(&self, i: usize, c: usize) -> u64 {
        self.repeats(i, c) * self.shot_savings[i]
    }

    /// Per-region writing times `T_c` for a given selection.
    ///
    /// # Panics
    ///
    /// Panics if the selection length differs from [`num_chars`].
    ///
    /// [`num_chars`]: Instance::num_chars
    pub fn writing_times(&self, selection: &Selection) -> Vec<u64> {
        assert_eq!(
            selection.len(),
            self.num_chars(),
            "selection length must equal the number of characters"
        );
        let mut times = self.vsb_times.clone();
        for i in selection.iter_selected() {
            for e in self.sparse_row(i) {
                times[e.region as usize] -= e.reduction;
            }
        }
        times
    }

    /// System writing time `T_total = max_c T_c` for a selection (Eqn. (1)).
    pub fn total_writing_time(&self, selection: &Selection) -> u64 {
        self.writing_times(selection).into_iter().max().unwrap_or(0)
    }

    /// Sum of `T_c` over regions; a secondary statistic used by some
    /// baselines that optimize total rather than maximal time.
    pub fn sum_writing_time(&self, selection: &Selection) -> u64 {
        self.writing_times(selection).into_iter().sum()
    }

    /// Number of stencil rows for a 1D instance.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotRowStructured`] for 2D instances.
    pub fn num_rows(&self) -> Result<usize, ModelError> {
        self.stencil.num_rows().ok_or(ModelError::NotRowStructured)
    }

    /// Writing-time reduction summed over all regions (unweighted profit),
    /// `Σ_c R_ic`. Cached at construction — O(1).
    #[inline]
    pub fn total_reduction(&self, i: usize) -> u64 {
        self.total_reductions[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
            Character::new(30, 40, [4, 6, 5, 5], 4).unwrap(),
            Character::new(50, 40, [2, 2, 5, 5], 7).unwrap(),
        ];
        let repeats = vec![vec![3, 0], vec![1, 5], vec![2, 2]];
        Instance::new(Stencil::with_rows(200, 80, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn vsb_times_cached() {
        let inst = inst();
        // region 0: 3*10 + 1*4 + 2*7 = 48 ; region 1: 0 + 5*4 + 2*7 = 34
        assert_eq!(inst.vsb_times(), &[48, 34]);
    }

    #[test]
    fn writing_time_matches_formula() {
        let inst = inst();
        let sel = Selection::from_indices(3, [0, 2]);
        // region 0: 48 - 3*9 - 2*6 = 9 ; region 1: 34 - 0 - 2*6 = 22
        assert_eq!(inst.writing_times(&sel), vec![9, 22]);
        assert_eq!(inst.total_writing_time(&sel), 22);
        assert_eq!(inst.sum_writing_time(&sel), 31);
    }

    #[test]
    fn empty_selection_gives_vsb_time() {
        let inst = inst();
        let sel = Selection::none(3);
        assert_eq!(inst.total_writing_time(&sel), 48);
    }

    #[test]
    fn full_selection_gives_cp_only_time() {
        let inst = inst();
        let sel = Selection::all(3);
        // region 0: 3+1+2 = 6 ; region 1: 0+5+2 = 7 (each use = 1 shot)
        assert_eq!(inst.writing_times(&sel), vec![6, 7]);
    }

    #[test]
    fn ragged_repeats_rejected() {
        let chars = vec![Character::new(40, 40, [5, 5, 5, 5], 10).unwrap()];
        let err = Instance::new(
            Stencil::new(100, 100).unwrap(),
            chars,
            vec![vec![1], vec![2]],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::RaggedRepeats { .. }));
    }

    #[test]
    fn stencil_rows() {
        let s = Stencil::with_rows(1000, 1000, 40).unwrap();
        assert_eq!(s.num_rows(), Some(25));
        assert!(Stencil::with_rows(10, 10, 0).is_err());
        assert!(Stencil::with_rows(10, 10, 11).is_err());
        assert!(Stencil::new(0, 5).is_err());
    }

    #[test]
    fn sparse_view_matches_dense_rows() {
        let inst = inst();
        for i in 0..inst.num_chars() {
            let mut dense_nonzeros = Vec::new();
            for (c, &t) in inst.repeat_row(i).iter().enumerate() {
                if t > 0 {
                    dense_nonzeros.push(SparseRepeat {
                        region: c as u32,
                        repeats: t,
                        reduction: t * inst.char(i).shot_saving(),
                    });
                }
            }
            assert_eq!(inst.sparse_row(i), &dense_nonzeros[..]);
            assert_eq!(
                inst.total_reduction(i),
                (0..inst.num_regions())
                    .map(|c| inst.reduction(i, c))
                    .sum::<u64>()
            );
            assert_eq!(inst.shot_saving(i), inst.char(i).shot_saving());
        }
    }

    #[test]
    fn from_flat_equals_nested_constructor() {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
            Character::new(30, 40, [4, 6, 5, 5], 4).unwrap(),
        ];
        let nested = Instance::new(
            Stencil::with_rows(200, 80, 40).unwrap(),
            chars.clone(),
            vec![vec![3, 0], vec![1, 5]],
        )
        .unwrap();
        let flat = Instance::from_flat(
            Stencil::with_rows(200, 80, 40).unwrap(),
            chars,
            vec![3, 0, 1, 5],
            2,
        )
        .unwrap();
        assert_eq!(nested, flat);
        assert_eq!(nested.digest(), flat.digest());
    }

    #[test]
    fn from_flat_rejects_bad_shapes() {
        let chars = vec![Character::new(40, 40, [5, 5, 5, 5], 10).unwrap()];
        assert!(matches!(
            Instance::from_flat(Stencil::new(100, 100).unwrap(), chars.clone(), vec![1], 0),
            Err(ModelError::NoRegions)
        ));
        assert!(matches!(
            Instance::from_flat(Stencil::new(100, 100).unwrap(), chars, vec![1, 2, 3], 2),
            Err(ModelError::RaggedRepeats { .. })
        ));
    }
}
