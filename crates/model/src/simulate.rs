//! A discrete simulator of the MCC writing process.
//!
//! The paper's objective (Eqn. (1)) is an *analytic* formula for the system
//! writing time. This module independently derives that time by actually
//! simulating the write: each CP walks its region's pattern list shot by
//! shot — one CP shot per repetition of an on-stencil character, `n_i` VSB
//! shots per repetition of an off-stencil character — and the column that
//! finishes last determines the system time. Agreement between
//! [`simulate_writing`] and [`Instance::writing_times`] is property-tested,
//! so the analytic accounting used by every planner is backed by an
//! executable model of the machine.
//!
//! The simulator also reports per-column shot breakdowns, which the
//! examples use to visualize how stencil selection shifts work from the
//! VSB path to the CP path.

use crate::{Instance, Selection};

/// Per-region outcome of a simulated write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnReport {
    /// Shots fired through the character projection path.
    pub cp_shots: u64,
    /// Shots fired through the VSB path.
    pub vsb_shots: u64,
    /// Total shots = writing time of this column (1 shot = 1 time unit).
    pub total: u64,
}

/// Full outcome of a simulated MCC write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReport {
    /// One report per wafer region (column).
    pub columns: Vec<ColumnReport>,
}

impl WriteReport {
    /// System writing time: the slowest column (the MCC bottleneck).
    pub fn system_time(&self) -> u64 {
        self.columns.iter().map(|c| c.total).max().unwrap_or(0)
    }

    /// Fraction of all shots that went through the CP path (a throughput
    /// quality indicator: higher = the stencil is doing more work).
    pub fn cp_fraction(&self) -> f64 {
        let cp: u64 = self.columns.iter().map(|c| c.cp_shots).sum();
        let total: u64 = self.columns.iter().map(|c| c.total).sum();
        if total == 0 {
            0.0
        } else {
            cp as f64 / total as f64
        }
    }
}

/// Simulates writing every region of `instance` with the given stencil
/// `selection`, shot by shot.
///
/// # Panics
///
/// Panics if the selection length does not match the instance.
pub fn simulate_writing(instance: &Instance, selection: &Selection) -> WriteReport {
    assert_eq!(
        selection.len(),
        instance.num_chars(),
        "selection must cover every candidate"
    );
    let mut columns = Vec::with_capacity(instance.num_regions());
    for c in 0..instance.num_regions() {
        let mut cp_shots = 0u64;
        let mut vsb_shots = 0u64;
        for i in 0..instance.num_chars() {
            let reps = instance.repeats(i, c);
            if reps == 0 {
                continue;
            }
            if selection.contains(i) {
                // Each repetition prints in a single CP flash.
                cp_shots += reps;
            } else {
                // Each repetition is fractured into n_i VSB rectangles.
                vsb_shots += reps * instance.char(i).vsb_shots();
            }
        }
        columns.push(ColumnReport {
            cp_shots,
            vsb_shots,
            total: cp_shots + vsb_shots,
        });
    }
    WriteReport { columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Character, Stencil};

    fn instance() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 12).unwrap(),
            Character::new(30, 40, [4, 6, 5, 5], 4).unwrap(),
            Character::new(50, 40, [2, 2, 5, 5], 7).unwrap(),
        ];
        let repeats = vec![vec![3, 0], vec![1, 5], vec![2, 2]];
        Instance::new(Stencil::with_rows(200, 80, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn simulation_matches_analytic_formula() {
        let inst = instance();
        for mask in 0u8..8 {
            let sel = Selection::from_indices(3, (0..3).filter(|i| (mask >> i) & 1 == 1));
            let report = simulate_writing(&inst, &sel);
            let analytic = inst.writing_times(&sel);
            let simulated: Vec<u64> = report.columns.iter().map(|c| c.total).collect();
            assert_eq!(simulated, analytic, "mask {mask:03b}");
            assert_eq!(report.system_time(), inst.total_writing_time(&sel));
        }
    }

    #[test]
    fn empty_selection_is_pure_vsb() {
        let inst = instance();
        let report = simulate_writing(&inst, &Selection::none(3));
        assert!(report.columns.iter().all(|c| c.cp_shots == 0));
        assert_eq!(report.cp_fraction(), 0.0);
    }

    #[test]
    fn full_selection_is_pure_cp() {
        let inst = instance();
        let report = simulate_writing(&inst, &Selection::all(3));
        assert!(report.columns.iter().all(|c| c.vsb_shots == 0));
        assert!((report.cp_fraction() - 1.0).abs() < 1e-12);
        // CP shots = total repetitions per region.
        assert_eq!(report.columns[0].cp_shots, 3 + 1 + 2);
        assert_eq!(report.columns[1].cp_shots, 5 + 2);
    }

    #[test]
    fn cp_fraction_monotone_in_selection() {
        let inst = instance();
        let none = simulate_writing(&inst, &Selection::none(3)).cp_fraction();
        let some = simulate_writing(&inst, &Selection::from_indices(3, [0])).cp_fraction();
        let all = simulate_writing(&inst, &Selection::all(3)).cp_fraction();
        assert!(none <= some && some <= all);
    }
}
