//! Maximum-weight bipartite matching (Hungarian algorithm).
//!
//! E-BLOW's post-insertion stage (paper §3.5, Fig. 8) inserts unselected
//! characters into stencil rows under the constraint "at most one insertion
//! per row", modelled as a maximum weighted matching on the bipartite graph
//! (characters × rows) with edge weight = the character's profit. This crate
//! implements the `O(n·m²)` shortest-augmenting-path Hungarian method with
//! dual potentials, supporting:
//!
//! * rectangular instances (any number of left/right vertices);
//! * forbidden edges (`None` weight);
//! * *partial* matchings — a vertex stays unmatched when every incident
//!   edge is forbidden or has negative weight (matching it would lower the
//!   total).
//!
//! # Example
//!
//! ```
//! use eblow_matching::max_weight_matching;
//!
//! // Characters a, b, c; rows 0, 1. `a` fits both rows, `c` only row 1.
//! let w = vec![
//!     vec![Some(5.0), Some(5.0)],
//!     vec![Some(4.0), Some(3.0)],
//!     vec![None, Some(9.0)],
//! ];
//! let m = max_weight_matching(&w);
//! assert_eq!(m.pairs, vec![Some(0), None, Some(1)]); // a→row0, c→row1
//! assert!((m.total - 14.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Result of a matching computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// `pairs[l] = Some(r)` when left vertex `l` is matched to right
    /// vertex `r`.
    pub pairs: Vec<Option<usize>>,
    /// Total weight of the matching.
    pub total: f64,
}

impl Matching {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.iter().flatten().count()
    }

    /// `true` when nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inverse view: for each right vertex, the matched left vertex.
    pub fn right_pairs(&self, num_right: usize) -> Vec<Option<usize>> {
        let mut inv = vec![None; num_right];
        for (l, r) in self.pairs.iter().enumerate() {
            if let Some(r) = r {
                inv[*r] = Some(l);
            }
        }
        inv
    }
}

/// Computes a maximum-weight (not necessarily perfect) matching.
///
/// `weights[l][r]` is the weight of edge `(l, r)`; `None` forbids the edge.
/// Negative-weight edges are never used (leaving a vertex unmatched weighs
/// `0`), matching the post-insertion semantics where an insertion with no
/// benefit is simply skipped.
///
/// # Panics
///
/// Panics if `weights` is ragged or contains NaN.
pub fn max_weight_matching(weights: &[Vec<Option<f64>>]) -> Matching {
    let nl = weights.len();
    if nl == 0 {
        return Matching {
            pairs: Vec::new(),
            total: 0.0,
        };
    }
    let nr = weights[0].len();
    for row in weights {
        assert_eq!(row.len(), nr, "ragged weight matrix");
        for w in row.iter().flatten() {
            assert!(!w.is_nan(), "NaN weight");
        }
    }

    // Reduce to square min-cost assignment of size n = nl, columns
    // nr + nl: real columns cost −w (forbidden/negative → dummy), plus one
    // dummy column per left vertex with cost 0 (= stay unmatched).
    let m = nr + nl;
    let big = 1e18;
    let cost = |l: usize, c: usize| -> f64 {
        if c < nr {
            match weights[l][c] {
                Some(w) if w > 0.0 => -w,
                _ => big,
            }
        } else if c - nr == l {
            0.0 // private dummy: leave l unmatched
        } else {
            big
        }
    };

    // Jonker-Volgenant-style shortest augmenting paths with potentials
    // (1-indexed internals, the classic formulation).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; nl + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=nl {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = vec![None; nl];
    let mut total = 0.0;
    for j in 1..=nr {
        let i = p[j];
        if i != 0 {
            if let Some(w) = weights[i - 1][j - 1] {
                if w > 0.0 {
                    pairs[i - 1] = Some(j - 1);
                    total += w;
                }
            }
        }
    }
    Matching { pairs, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(weights: &[Vec<Option<f64>>]) -> f64 {
        // Exponential enumeration over left-to-right assignments.
        fn rec(weights: &[Vec<Option<f64>>], l: usize, used: &mut Vec<bool>) -> f64 {
            if l == weights.len() {
                return 0.0;
            }
            let mut best = rec(weights, l + 1, used); // leave l unmatched
            for (r, w) in weights[l].iter().enumerate() {
                if let Some(w) = w {
                    if *w > 0.0 && !used[r] {
                        used[r] = true;
                        best = best.max(w + rec(weights, l + 1, used));
                        used[r] = false;
                    }
                }
            }
            best
        }
        let nr = weights.first().map_or(0, |r| r.len());
        rec(weights, 0, &mut vec![false; nr])
    }

    fn check_valid(weights: &[Vec<Option<f64>>], m: &Matching) {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0.0;
        for (l, r) in m.pairs.iter().enumerate() {
            if let Some(r) = r {
                assert!(seen.insert(*r), "right vertex matched twice");
                let w = weights[l][*r].expect("matched a forbidden edge");
                assert!(w > 0.0, "matched a non-positive edge");
                total += w;
            }
        }
        assert!((total - m.total).abs() < 1e-9);
    }

    #[test]
    fn doc_example() {
        let w = vec![
            vec![Some(5.0), Some(5.0)],
            vec![Some(4.0), Some(3.0)],
            vec![None, Some(9.0)],
        ];
        let m = max_weight_matching(&w);
        check_valid(&w, &m);
        assert!((m.total - 14.0).abs() < 1e-9);
        assert_eq!(m.right_pairs(2), vec![Some(0), Some(2)]);
    }

    #[test]
    fn empty_inputs() {
        let m = max_weight_matching(&[]);
        assert!(m.is_empty());
        let w: Vec<Vec<Option<f64>>> = vec![vec![], vec![]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![None, None]);
        assert_eq!(m.total, 0.0);
    }

    #[test]
    fn negative_edges_left_unmatched() {
        let w = vec![vec![Some(-3.0), Some(2.0)], vec![Some(-1.0), Some(-2.0)]];
        let m = max_weight_matching(&w);
        check_valid(&w, &m);
        assert_eq!(m.pairs, vec![Some(1), None]);
        assert!((m.total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_forbidden() {
        let w = vec![vec![None, None], vec![None, None]];
        let m = max_weight_matching(&w);
        assert_eq!(m.len(), 0);
        assert_eq!(m.total, 0.0);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let w = vec![vec![Some(1.0)], vec![Some(5.0)], vec![Some(3.0)]];
        let m = max_weight_matching(&w);
        check_valid(&w, &m);
        assert_eq!(m.pairs, vec![None, Some(0), None]);
        assert!((m.total - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_assignment() {
        // Square instance with a known optimum.
        let w = vec![
            vec![Some(7.0), Some(5.0), Some(11.0)],
            vec![Some(5.0), Some(4.0), Some(1.0)],
            vec![Some(9.0), Some(3.0), Some(2.0)],
        ];
        let m = max_weight_matching(&w);
        check_valid(&w, &m);
        // 11 + 4 + 9 = 24
        assert!((m.total - 24.0).abs() < 1e-9, "total {}", m.total);
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_instances() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..60 {
            let nl = 1 + (next() % 5) as usize;
            let nr = 1 + (next() % 5) as usize;
            let w: Vec<Vec<Option<f64>>> = (0..nl)
                .map(|_| {
                    (0..nr)
                        .map(|_| {
                            let r = next() % 10;
                            if r < 2 {
                                None
                            } else {
                                Some((next() % 41) as f64 - 8.0)
                            }
                        })
                        .collect()
                })
                .collect();
            let m = max_weight_matching(&w);
            check_valid(&w, &m);
            let bf = brute_force(&w);
            assert!(
                (m.total - bf).abs() < 1e-9,
                "trial {trial}: hungarian {} vs brute {bf} on {w:?}",
                m.total
            );
        }
    }
}
