//! **E-BLOW** — overlapping-aware stencil planning for MCC e-beam
//! lithography systems (facade crate).
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! | module | contents |
//! |---|---|
//! | [`model`] | characters, instances, placements, writing-time accounting |
//! | [`planner`] | the E-BLOW 1D/2D pipelines (with pluggable `LpOracle` backends), exact ILPs, baselines |
//! | [`engine`] | the portfolio engine: Strategy registry (incl. `eblow1d@combinatorial` / `eblow1d@simplex` backend variants), deadline racing, plan cache |
//! | [`gen`] | the synthetic benchmark families of the paper's evaluation |
//! | [`lp`] | simplex + branch-and-bound MILP substrate |
//! | [`kdtree`], [`matching`], [`seqpair`], [`anneal`] | algorithmic substrates |
//! | [`hardness`] | executable NP-hardness reductions (3SAT → BSS → 1DOSP) |
//! | [`trace`] | flight-recorder tracing/metrics (off by default; zero-overhead off) |
//!
//! # Quickstart
//!
//! ```
//! use eblow::planner::oned::Eblow1d;
//! use eblow::gen::GenConfig;
//!
//! let instance = eblow::gen::generate(&GenConfig::tiny_1d(42));
//! let plan = Eblow1d::default().plan(&instance).unwrap();
//! plan.placement.validate(&instance).unwrap();
//! println!("writing time {}", plan.total_time);
//! ```
//!
//! Production callers should prefer the portfolio engine, which races every
//! applicable planner under a deadline and caches plans by instance digest:
//!
//! ```
//! use eblow::engine::Planner;
//! use eblow::gen::GenConfig;
//!
//! let instance = eblow::gen::generate(&GenConfig::tiny_1d(42));
//! let outcome = Planner::portfolio().plan(&instance);
//! let best = outcome.best.expect("some strategy produced a valid plan");
//! println!("{} found writing time {}", best.strategy, best.total_time);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (in particular
//! `examples/portfolio.rs`) and the `eblow-eval` binary for the full
//! paper-table reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eblow_anneal as anneal;
pub use eblow_core as planner;
pub use eblow_engine as engine;
pub use eblow_gen as gen;
pub use eblow_hardness as hardness;
pub use eblow_kdtree as kdtree;
pub use eblow_lp as lp;
pub use eblow_matching as matching;
pub use eblow_model as model;
pub use eblow_seqpair as seqpair;
pub use eblow_trace as trace;
