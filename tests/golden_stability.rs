//! Golden plan-stability gates for the columnar instance layout and the
//! warm-started rounding loop.
//!
//! The constants below were captured from the repository *before* the
//! slab+CSR layout swap and the hot-path rewrite (PR 5). They pin three
//! guarantees that production callers rely on:
//!
//! * **Digests** — `InstanceDigest` keys plan caches and persisted
//!   artifacts; a layout change must not move a single bit.
//! * **Planner outputs** — the full `Eblow1d` pipeline (rounding, fast ILP
//!   convergence, refinement, post stages) must produce byte-identical
//!   placements on the 1T reference cases, so the Tables 3/4 reproduction
//!   and cached plans are unaffected.
//! * **Features** — `InstanceFeatures` feeds the persisted selection
//!   model; its aggregates must stay bit-exact.

use eblow::gen::Family;
use eblow::model::Fnv64;
use eblow::planner::oned::Eblow1d;

/// `(digest hex, total writing time, chars on stencil, plan fingerprint)`
/// captured pre-refactor for 1T-1..5.
const GOLDEN_1T: [(&str, u64, usize, u64); 5] = [
    (
        "6169796e6d1cf2c25bd7a63352dc34a2",
        18,
        6,
        0x588fd9adf47457a2,
    ),
    (
        "47f1c9337b4976c26644dbb0fb1bfb3d",
        31,
        6,
        0x49757879a7b8dbc8,
    ),
    (
        "b20d520eff53b8c246ed3876af950a5a",
        38,
        6,
        0x00ba38744378d88b,
    ),
    (
        "9628cb04aa15fac27eee1e755c696932",
        42,
        6,
        0xb02d20f162aeae68,
    ),
    (
        "6ac0a6d214367ec21b4bed33ed66e48f",
        60,
        6,
        0x80821ae837397568,
    ),
];

/// Stable fingerprint of a 1D plan: row orders, region times, total time.
fn plan_fingerprint(plan: &eblow::planner::Plan1d) -> u64 {
    let mut h = Fnv64::new();
    for row in plan.placement.rows() {
        h.write((row.order().len() as u64).to_le_bytes());
        for id in row.order() {
            h.write((id.index() as u64).to_le_bytes());
        }
    }
    for &t in &plan.region_times {
        h.write(t.to_le_bytes());
    }
    h.write(plan.total_time.to_le_bytes());
    h.finish()
}

#[test]
fn reference_digests_and_planner_outputs_are_byte_stable() {
    for (k, &(digest, total, chars, fp)) in GOLDEN_1T.iter().enumerate() {
        let inst = eblow::gen::benchmark(Family::T1(k as u8 + 1));
        assert_eq!(
            inst.digest().to_hex(),
            digest,
            "1T-{} digest moved — cache keys are broken",
            k + 1
        );
        let plan = Eblow1d::default().plan(&inst).unwrap();
        assert_eq!(plan.total_time, total, "1T-{} writing time moved", k + 1);
        assert_eq!(
            plan.selection.count(),
            chars,
            "1T-{} char count moved",
            k + 1
        );
        assert_eq!(
            plan_fingerprint(&plan),
            fp,
            "1T-{} placement changed byte-for-byte",
            k + 1
        );
    }
}

#[test]
fn generated_instance_features_are_bit_stable() {
    // Pre-refactor values for GenConfig::tiny_1d(1): every float must be
    // bit-identical (the selection model persists on these).
    let inst = eblow::gen::generate(&eblow::gen::GenConfig::tiny_1d(1));
    assert_eq!(inst.digest().to_hex(), "09fab18e37dc38c28fd4082a14d3a1fe");
    let f = eblow::model::InstanceFeatures::of(&inst);
    assert_eq!(f.num_chars, 60);
    assert_eq!(f.num_regions, 3);
    assert_eq!(f.cells, 180);
    assert_eq!(f.mean_width.to_bits(), 32.916666666666664f64.to_bits());
    assert_eq!(f.mean_h_blank.to_bits(), 5.791666666666667f64.to_bits());
    assert_eq!(f.max_h_blank, 10);
    assert_eq!(f.blank_fraction.to_bits(), 0.3518987341772152f64.to_bits());
    assert_eq!(f.profit_mean.to_bits(), 156.66666666666666f64.to_bits());
    assert_eq!(f.profit_cv.to_bits(), 1.55863212074644f64.to_bits());
}
