//! Cross-crate integration tests for the 1D planners: every planner must
//! produce placements the model validator accepts, and the quality order of
//! the paper's Table 3 must hold in aggregate.

use eblow::gen::{benchmark, generate, Family, GenConfig};
use eblow::model::Selection;
use eblow::planner::baselines::{greedy_1d, heuristic_1d, row_heuristic_1d};
use eblow::planner::oned::{Eblow1d, Eblow1dConfig};

fn seeds() -> impl Iterator<Item = u64> {
    1..=6u64
}

#[test]
fn every_planner_is_valid_on_random_instances() {
    for seed in seeds() {
        let inst = generate(&GenConfig::tiny_1d(seed));
        let plans = vec![
            ("greedy", greedy_1d(&inst).unwrap()),
            ("heur24", heuristic_1d(&inst, &Default::default()).unwrap()),
            ("row25", row_heuristic_1d(&inst).unwrap()),
            ("eblow", Eblow1d::default().plan(&inst).unwrap()),
        ];
        for (name, plan) in plans {
            plan.placement
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{name} invalid on seed {seed}: {e}"));
            // Reported totals must match the model's own accounting.
            assert_eq!(
                plan.total_time,
                inst.total_writing_time(&plan.selection),
                "{name} mis-reports writing time on seed {seed}"
            );
            assert_eq!(plan.selection.count(), plan.placement.num_placed());
        }
    }
}

#[test]
fn eblow_beats_or_ties_every_baseline_in_aggregate() {
    let mut eblow_total = 0u64;
    let mut greedy_total = 0u64;
    let mut heur_total = 0u64;
    let mut row_total = 0u64;
    for seed in seeds() {
        let inst = generate(&GenConfig::tiny_1d(100 + seed));
        eblow_total += Eblow1d::default().plan(&inst).unwrap().total_time;
        greedy_total += greedy_1d(&inst).unwrap().total_time;
        heur_total += heuristic_1d(&inst, &Default::default()).unwrap().total_time;
        row_total += row_heuristic_1d(&inst).unwrap().total_time;
    }
    assert!(eblow_total <= greedy_total, "E-BLOW worse than greedy");
    assert!(eblow_total <= heur_total, "E-BLOW worse than heur24");
    assert!(eblow_total <= row_total, "E-BLOW worse than row25");
}

#[test]
fn selection_always_improves_over_empty_stencil() {
    for seed in seeds() {
        let inst = generate(&GenConfig::tiny_1d(200 + seed));
        let vsb = inst.total_writing_time(&Selection::none(inst.num_chars()));
        let plan = Eblow1d::default().plan(&inst).unwrap();
        assert!(plan.total_time <= vsb);
    }
}

#[test]
fn eblow1_improves_on_eblow0_in_aggregate() {
    // Fig. 11's claim at integration scope.
    let mut t0 = 0u64;
    let mut t1 = 0u64;
    for seed in seeds() {
        let inst = generate(&GenConfig::tiny_1d(300 + seed));
        t0 += Eblow1d::new(Eblow1dConfig::eblow0())
            .plan(&inst)
            .unwrap()
            .total_time;
        t1 += Eblow1d::new(Eblow1dConfig::eblow1())
            .plan(&inst)
            .unwrap()
            .total_time;
    }
    assert!(t1 <= t0, "E-BLOW-1 ({t1}) must not lose to E-BLOW-0 ({t0})");
}

#[test]
fn lp_backends_agree_on_reference_instances_through_the_facade() {
    // The acceptance cross-check at facade scope: first-iteration LP
    // objectives of the combinatorial and simplex backends within 5%
    // relative on the tiny reference cases, and both rounded plans valid.
    use eblow::planner::oned::{CombinatorialOracle, LpOracle, MkpItem, RowBase, SimplexOracle};
    use std::sync::Arc;
    for k in 1..=5u8 {
        let inst = benchmark(Family::T1(k));
        // The canonical first-iteration construction — the same items the
        // pipeline, `eblow-eval agree`, and the oracle proptest use.
        let items = MkpItem::initial_set(&inst);
        let rows = vec![RowBase::default(); inst.num_rows().unwrap()];
        let w = inst.stencil().width();
        let comb = CombinatorialOracle.solve_lp(&items, &rows, w).unwrap();
        let simp = SimplexOracle::default().solve_lp(&items, &rows, w).unwrap();
        let scale = comb.objective.abs().max(simp.objective.abs()).max(1.0);
        assert!(
            (comb.objective - simp.objective).abs() <= 0.05 * scale,
            "1T-{k}: combinatorial {} vs simplex {}",
            comb.objective,
            simp.objective
        );

        let simp_plan =
            Eblow1d::new(Eblow1dConfig::default().with_oracle(Arc::new(SimplexOracle::default())))
                .plan(&inst)
                .unwrap();
        simp_plan.placement.validate(&inst).unwrap();
        let comb_plan = Eblow1d::default().plan(&inst).unwrap();
        comb_plan.placement.validate(&inst).unwrap();
    }
}

#[test]
fn stop_flag_makes_every_baseline_return_quickly_and_validly() {
    use eblow::planner::baselines::{greedy_1d_with_stop, row_heuristic_1d_with_stop};
    use eblow::planner::StopFlag;
    use std::sync::atomic::AtomicBool;
    let inst = generate(&GenConfig::tiny_1d(55));
    let stop = AtomicBool::new(true);
    for plan in [
        greedy_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap(),
        row_heuristic_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap(),
    ] {
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    }
}

#[test]
fn deterministic_replanning() {
    let inst = generate(&GenConfig::tiny_1d(77));
    let a = Eblow1d::default().plan(&inst).unwrap();
    let b = Eblow1d::default().plan(&inst).unwrap();
    assert_eq!(a.placement, b.placement);
    assert_eq!(a.total_time, b.total_time);
}

#[test]
fn paper_benchmark_shapes() {
    // Smoke-run one real benchmark end to end (kept small: 1D-1).
    let inst = benchmark(Family::D1(1));
    let plan = Eblow1d::default().plan(&inst).unwrap();
    plan.placement.validate(&inst).unwrap();
    // The paper's 1D cases place the vast majority of the 1000 candidates.
    assert!(plan.selection.count() > 600, "{}", plan.selection.count());
    let trace = plan.trace.expect("trace");
    assert!(
        trace.unsolved_per_iter.len() >= 2,
        "multi-iteration rounding"
    );
}
