//! Cross-crate correctness checks: exact solvers vs heuristics vs certified
//! brute force, the NP-hardness chain against the real planner, and
//! property-based end-to-end invariants.

use eblow::gen::{benchmark, generate, Family, GenConfig};
use eblow::hardness::{brute_force_min_row, bss_to_osp};
use eblow::lp::MilpStatus;
use eblow::planner::ilp::{solve_ilp_1d, solve_ilp_2d};
use eblow::planner::oned::Eblow1d;
use eblow::planner::twod::Eblow2d;
use proptest::prelude::*;
use std::time::Duration;

#[test]
fn eblow_matches_certified_optimum_on_all_tiny_1d_cases() {
    // The Table 5 headline: E-BLOW reaches the optimum on every 1T case.
    for k in 1..=5u8 {
        let inst = benchmark(Family::T1(k));
        let plan = Eblow1d::default().plan(&inst).unwrap();
        let optimum = brute_force_min_row(&inst);
        assert_eq!(
            plan.total_time, optimum,
            "1T-{k}: E-BLOW {} vs certified optimum {optimum}",
            plan.total_time
        );
    }
}

#[test]
fn exact_ilp_agrees_with_brute_force_when_it_proves() {
    // 1T-3 is the case our branch & bound proves quickly.
    let inst = benchmark(Family::T1(3));
    let out = solve_ilp_1d(&inst, Duration::from_secs(60)).unwrap();
    if out.status == MilpStatus::Optimal {
        assert_eq!(out.total_time, Some(brute_force_min_row(&inst)));
        out.placement_1d.unwrap().validate(&inst).unwrap();
    }
}

#[test]
fn exact_ilp_2d_incumbent_is_reachable_by_eblow() {
    let inst = benchmark(Family::T2(1));
    let ilp = solve_ilp_2d(&inst, Duration::from_secs(30));
    let plan = Eblow2d::default().plan(&inst).unwrap();
    if let Some(t) = ilp.total_time {
        // E-BLOW seeds the ILP, so the ILP can only be equal or better.
        assert!(t <= plan.total_time);
        if ilp.status == MilpStatus::Optimal {
            assert!(plan.total_time >= t);
        }
    }
}

#[test]
fn hardness_chain_agrees_with_planner() {
    // Planted yes-instances: the planner should reach the yes-threshold.
    for (xs, s) in [
        (vec![1100u64, 1200, 2000], 2300u64),
        (vec![60, 70, 80, 90], 150),
    ] {
        let osp = bss_to_osp(&xs, s);
        let optimum = brute_force_min_row(&osp.instance);
        assert_eq!(optimum, osp.yes_writing_time());
        let plan = Eblow1d::default().plan(&osp.instance).unwrap();
        assert_eq!(plan.total_time, optimum, "xs={xs:?} s={s}");
    }
}

#[test]
fn instance_io_roundtrips_all_benchmark_families() {
    for fam in [
        Family::D1(1),
        Family::M1(2),
        Family::D2(3),
        Family::M2(4),
        Family::T1(1),
        Family::T2(2),
    ] {
        let inst = benchmark(fam);
        let text = eblow::model::io::to_string(&inst);
        let back = eblow::model::io::from_str(&text).unwrap();
        assert_eq!(inst, back, "{} failed to roundtrip", fam.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated instance yields a valid, accounting-consistent plan.
    #[test]
    fn random_instances_plan_validly(seed in 0u64..5000) {
        let inst = generate(&GenConfig::tiny_1d(seed));
        let plan = Eblow1d::default().plan(&inst).unwrap();
        prop_assert!(plan.placement.validate(&inst).is_ok());
        prop_assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
        // Row widths never exceed the stencil.
        for row in plan.placement.rows() {
            prop_assert!(row.min_width(&inst) <= inst.stencil().width());
        }
    }

    /// 2D plans keep every placed pair disjunctively separated.
    #[test]
    fn random_2d_instances_plan_validly(seed in 0u64..5000) {
        let inst = generate(&GenConfig::tiny_2d(seed));
        let plan = Eblow2d::default().plan(&inst).unwrap();
        prop_assert!(plan.placement.validate(&inst).is_ok());
        prop_assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    }

    /// The LP oracle's objective never exceeds the aggregate fractional
    /// knapsack bound, and the planner's final selection is feasible.
    #[test]
    fn planted_bss_instances_stay_consistent(
        mut xs in prop::collection::vec(600u64..1000, 2..8),
        pick in prop::collection::vec(any::<bool>(), 8),
    ) {
        // Build a planted yes-instance: s = sum of a random subset.
        let s: u64 = xs.iter().zip(&pick).filter(|(_, &p)| p).map(|(x, _)| *x).sum();
        xs.sort_unstable();
        let osp = bss_to_osp(&xs, s);
        let optimum = brute_force_min_row(&osp.instance);
        prop_assert_eq!(optimum, osp.yes_writing_time());
        let plan = Eblow1d::default().plan(&osp.instance).unwrap();
        prop_assert!(plan.placement.validate(&osp.instance).is_ok());
        prop_assert!(plan.total_time >= optimum);
    }
}
