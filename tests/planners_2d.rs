//! Cross-crate integration tests for the 2D planners.

use eblow::gen::{generate, GenConfig};
use eblow::planner::baselines::{greedy_2d, sa_2d};
use eblow::planner::twod::{Eblow2d, Eblow2dConfig, PackEngine};

#[test]
fn all_2d_planners_are_valid() {
    for seed in 1..=4u64 {
        let inst = generate(&GenConfig::tiny_2d(seed));
        let plans = vec![
            ("greedy", greedy_2d(&inst).unwrap()),
            ("sa24", sa_2d(&inst, &Default::default()).unwrap()),
            ("eblow", Eblow2d::default().plan(&inst).unwrap()),
        ];
        for (name, plan) in plans {
            plan.placement
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{name} invalid on seed {seed}: {e}"));
            assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
        }
    }
}

#[test]
fn engines_agree_on_validity_and_rough_quality() {
    let inst = generate(&GenConfig::tiny_2d(9));
    let sp = Eblow2d::new(Eblow2dConfig {
        engine: PackEngine::SeqPair,
        ..Default::default()
    })
    .plan(&inst)
    .unwrap();
    let sk = Eblow2d::new(Eblow2dConfig {
        engine: PackEngine::Skyline,
        ..Default::default()
    })
    .plan(&inst)
    .unwrap();
    sp.placement.validate(&inst).unwrap();
    sk.placement.validate(&inst).unwrap();
    // Engines are different heuristics; they should land in the same ballpark.
    let (a, b) = (sp.total_time.max(1) as f64, sk.total_time.max(1) as f64);
    assert!(a / b < 1.6 && b / a < 1.6, "engines diverge: {a} vs {b}");
}

#[test]
fn eblow_2d_beats_greedy_in_aggregate() {
    let mut eblow_total = 0u64;
    let mut greedy_total = 0u64;
    for seed in 10..=14u64 {
        let inst = generate(&GenConfig::tiny_2d(seed));
        eblow_total += Eblow2d::default().plan(&inst).unwrap().total_time;
        greedy_total += greedy_2d(&inst).unwrap().total_time;
    }
    assert!(
        eblow_total < greedy_total,
        "E-BLOW 2D ({eblow_total}) must beat greedy ({greedy_total}) in aggregate"
    );
}

#[test]
fn clustering_ablation_remains_valid_and_sane() {
    let inst = generate(&GenConfig::tiny_2d(21));
    let clustered = Eblow2d::default().plan(&inst).unwrap();
    let unclustered = Eblow2d::new(Eblow2dConfig {
        clustering: false,
        ..Default::default()
    })
    .plan(&inst)
    .unwrap();
    clustered.placement.validate(&inst).unwrap();
    unclustered.placement.validate(&inst).unwrap();
    let (a, b) = (
        clustered.total_time.max(1) as f64,
        unclustered.total_time.max(1) as f64,
    );
    assert!(a / b < 1.6 && b / a < 1.6, "ablation diverges: {a} vs {b}");
}

#[test]
fn planner_runs_on_row_structured_instances_too() {
    // A 1D instance is a legal 2D instance (rows ignored).
    let inst = generate(&GenConfig::tiny_1d(5));
    let plan = Eblow2d::default().plan(&inst).unwrap();
    plan.placement.validate(&inst).unwrap();
}
