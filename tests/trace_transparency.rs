//! The flight recorder's transparency guarantee: tracing is observation
//! only, so plans, digests, and placements are bit-identical whether the
//! recorder is off or fully on. This is what makes `Level::Counters` safe
//! to leave enabled under benchmarking and `eblow-eval trace` safe to
//! point at any case.

use eblow::gen::{generate, GenConfig};
use eblow::model::Fnv64;
use eblow::planner::oned::Eblow1d;
use eblow::planner::twod::Eblow2d;
use eblow::trace::{set_level, Level};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The recorder level is process-global; every test that flips it holds
/// this lock so `cargo test`'s default parallelism cannot interleave an
/// `Off` run of one test with a `Full` run of another.
fn level_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Stable fingerprint of a 1D plan: row orders, region times, total time
/// (same construction as the golden-stability suite).
fn plan_fingerprint_1d(plan: &eblow::planner::Plan1d) -> u64 {
    let mut h = Fnv64::new();
    for row in plan.placement.rows() {
        h.write((row.order().len() as u64).to_le_bytes());
        for id in row.order() {
            h.write((id.index() as u64).to_le_bytes());
        }
    }
    for &t in &plan.region_times {
        h.write(t.to_le_bytes());
    }
    h.write(plan.total_time.to_le_bytes());
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// 1D pipeline: plan + instance digest are bit-identical with the
    /// recorder fully on vs off.
    #[test]
    fn tracing_never_changes_1d_plans(seed in 0u64..5000) {
        let _serial = level_lock();
        set_level(Level::Off);
        let inst_off = generate(&GenConfig::tiny_1d(seed));
        let plan_off = Eblow1d::default().plan(&inst_off).unwrap();

        set_level(Level::Full);
        let inst_on = generate(&GenConfig::tiny_1d(seed));
        let plan_on = Eblow1d::default().plan(&inst_on).unwrap();
        set_level(Level::Off);

        prop_assert_eq!(inst_off.digest().to_hex(), inst_on.digest().to_hex());
        prop_assert_eq!(plan_off.total_time, plan_on.total_time);
        prop_assert_eq!(&plan_off.selection, &plan_on.selection);
        prop_assert_eq!(&plan_off.region_times, &plan_on.region_times);
        prop_assert_eq!(plan_fingerprint_1d(&plan_off), plan_fingerprint_1d(&plan_on));
    }

    /// 2D pipeline: same guarantee.
    #[test]
    fn tracing_never_changes_2d_plans(seed in 0u64..5000) {
        let _serial = level_lock();
        set_level(Level::Off);
        let inst = generate(&GenConfig::tiny_2d(seed));
        let plan_off = Eblow2d::default().plan(&inst).unwrap();

        set_level(Level::Full);
        let plan_on = Eblow2d::default().plan(&inst).unwrap();
        set_level(Level::Off);

        prop_assert_eq!(plan_off.total_time, plan_on.total_time);
        prop_assert_eq!(&plan_off.selection, &plan_on.selection);
    }
}

/// The engine path (portfolio race + plan cache) is equally transparent:
/// a single-strategy deterministic race returns the same plan at every
/// recorder level.
#[test]
fn tracing_never_changes_single_strategy_races() {
    use eblow::engine::{Portfolio, PortfolioConfig};
    let _serial = level_lock();
    let inst = generate(&GenConfig::tiny_1d(4242));
    let portfolio = Portfolio::of_names(["eblow1d"]).unwrap();

    set_level(Level::Off);
    let off = portfolio.run(&inst, &PortfolioConfig::default());
    set_level(Level::Counters);
    let counters = portfolio.run(&inst, &PortfolioConfig::default());
    set_level(Level::Full);
    let full = portfolio.run(&inst, &PortfolioConfig::default());
    set_level(Level::Off);

    let t_off = off.best.as_ref().unwrap();
    for (level, outcome) in [("counters", &counters), ("full", &full)] {
        let t_on = outcome.best.as_ref().unwrap();
        assert_eq!(t_off.total_time, t_on.total_time, "level {level}");
        assert_eq!(t_off.selection, t_on.selection, "level {level}");
        assert_eq!(t_off.region_times, t_on.region_times, "level {level}");
    }
}
